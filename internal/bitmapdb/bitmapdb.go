// Package bitmapdb is a small DRAM-resident bitmap-index store — the
// adoption layer the paper's Bitmap case study (§6.3.1) implies: named
// bitmaps live inside the modeled DRAM module, and analytics queries are
// boolean expressions over the names, compiled by internal/expr and
// executed in-array through any engine.
//
//	db, _ := bitmapdb.New(module, engine, 16<<20, 10)
//	db.Set("active_w1", weekOne)
//	db.Set("male", genders)
//	matches, stats, _ := db.Query("active_w1 & active_w2 & male")
package bitmapdb

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/bitvec"
	"repro/internal/dram"
	"repro/internal/engine"
	"repro/internal/expr"
	"repro/internal/layout"
)

// ambitStagingRows is the scratch headroom kept above the expression temps
// for engines that stage through the top of the subarray (Ambit's B-group
// spans six data rows; DRISA uses four).
const ambitStagingRows = 6

// DB is a bitmap-index store over one DRAM module.
type DB struct {
	alloc    *layout.Allocator
	eng      engine.Engine
	universe int
	bitmaps  map[string]*layout.Vector
	// maxTemps is the temp budget available to compiled queries.
	maxTemps int
}

// New wraps a module. universe is the bitmap width in bits (one bit per
// tracked entity). scratchRows subarray rows are reserved for query temps
// and engine staging; it must cover the engine's needs plus at least one
// expression temp.
func New(module *dram.Module, eng engine.Engine, universe, scratchRows int) (*DB, error) {
	if eng == nil {
		return nil, errors.New("bitmapdb: nil engine")
	}
	if universe <= 0 {
		return nil, errors.New("bitmapdb: universe must be positive")
	}
	maxTemps := scratchRows - ambitStagingRows
	if maxTemps < 1 {
		return nil, fmt.Errorf("bitmapdb: scratchRows %d leaves no room for query temps (need > %d)",
			scratchRows, ambitStagingRows)
	}
	alloc, err := layout.NewAllocator(module, scratchRows)
	if err != nil {
		return nil, err
	}
	return &DB{
		alloc:    alloc,
		eng:      eng,
		universe: universe,
		bitmaps:  map[string]*layout.Vector{},
		maxTemps: maxTemps,
	}, nil
}

// Universe returns the bitmap width in bits.
func (db *DB) Universe() int { return db.universe }

// Names returns the stored bitmap names, sorted.
func (db *DB) Names() []string {
	out := make([]string, 0, len(db.bitmaps))
	for n := range db.bitmaps {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// writeVector is the allocator write call, indirect so tests can fail it
// mid-stripe and pin Set's adopt-on-success contract.
var writeVector = func(a *layout.Allocator, v *layout.Vector, data *bitvec.Vector) error {
	return a.Write(v, data)
}

// Set creates or replaces a named bitmap with host data. A fresh
// allocation is adopted into the store only after its write succeeds: on
// a write failure the rows are freed and the name stays absent, so a
// failed Set never leaves a half-written bitmap queryable.
func (db *DB) Set(name string, data *bitvec.Vector) error {
	if name == "" {
		return errors.New("bitmapdb: empty name")
	}
	if data.Len() != db.universe {
		return fmt.Errorf("bitmapdb: bitmap %q has %d bits, universe is %d",
			name, data.Len(), db.universe)
	}
	if v, ok := db.bitmaps[name]; ok {
		return writeVector(db.alloc, v, data)
	}
	v, err := db.alloc.Alloc(name, db.universe)
	if err != nil {
		return err
	}
	if err := writeVector(db.alloc, v, data); err != nil {
		// Not yet adopted: free the rows so the failed write costs nothing.
		if ferr := db.alloc.Free(v); ferr != nil {
			return errors.Join(err, ferr)
		}
		return err
	}
	db.bitmaps[name] = v
	return nil
}

// Get reads a named bitmap back to the host.
func (db *DB) Get(name string) (*bitvec.Vector, error) {
	v, ok := db.bitmaps[name]
	if !ok {
		return nil, fmt.Errorf("bitmapdb: unknown bitmap %q", name)
	}
	return db.alloc.Read(v)
}

// Delete removes a named bitmap and frees its rows.
func (db *DB) Delete(name string) error {
	v, ok := db.bitmaps[name]
	if !ok {
		return fmt.Errorf("bitmapdb: unknown bitmap %q", name)
	}
	delete(db.bitmaps, name)
	return db.alloc.Free(v)
}

// Count returns the cardinality of a named bitmap (the CPU-side count
// phase of the case study).
func (db *DB) Count(name string) (int, error) {
	v, err := db.Get(name)
	if err != nil {
		return 0, err
	}
	return v.Popcount(), nil
}

// Query evaluates a boolean expression over the stored bitmaps entirely
// in DRAM and returns the match vector plus the per-module operation cost
// (unscheduled: total row-op work; divide by the deployment's effective
// bank parallelism for wall-clock).
func (db *DB) Query(src string) (*bitvec.Vector, engine.Stats, error) {
	node, err := expr.Parse(src)
	if err != nil {
		return nil, engine.Stats{}, err
	}
	prog, err := expr.Compile(node)
	if err != nil {
		return nil, engine.Stats{}, err
	}
	if prog.TempSlots > db.maxTemps {
		return nil, engine.Stats{}, fmt.Errorf("bitmapdb: query needs %d temps, store allows %d",
			prog.TempSlots, db.maxTemps)
	}
	vars := make([]*layout.Vector, len(prog.Vars))
	for i, name := range prog.Vars {
		v, ok := db.bitmaps[name]
		if !ok {
			return nil, engine.Stats{}, fmt.Errorf("bitmapdb: unknown bitmap %q", name)
		}
		vars[i] = v
	}

	module := db.alloc.Module()
	cols := module.Config().Columns
	scratchBase := db.alloc.ScratchBase()
	out := bitvec.New(db.universe)

	stripes := (db.universe + cols - 1) / cols
	for s := 0; s < stripes; s++ {
		// All bitmaps are stripe-co-located by the allocator.
		var home layout.Placement
		varRows := make([]int, len(vars))
		for i, v := range vars {
			p := v.Placement(s)
			if i == 0 {
				home = p
			} else if p.Bank != home.Bank || p.Subarray != home.Subarray {
				return nil, engine.Stats{}, errors.New("bitmapdb: co-location invariant violated")
			}
			varRows[i] = p.Row
		}
		sub := module.Bank(home.Bank).Subarray(home.Subarray)
		resRow, err := prog.Execute(sub, db.eng, varRows, scratchBase)
		if err != nil {
			return nil, engine.Stats{}, err
		}
		row := sub.RowData(resRow)
		base := s * cols
		for i := 0; i < cols && base+i < db.universe; i++ {
			out.SetBit(base+i, row.Bit(i))
		}
	}

	// Bare-variable queries execute nothing; stripes of work otherwise.
	cost := prog.Cost(db.eng)
	total := cost
	if len(prog.Instrs) > 0 {
		total = cost.Scale(stripes)
	}
	return out, total, nil
}

// QueryCount evaluates a query and returns only the match count.
func (db *DB) QueryCount(src string) (int, engine.Stats, error) {
	v, st, err := db.Query(src)
	if err != nil {
		return 0, engine.Stats{}, err
	}
	return v.Popcount(), st, nil
}
