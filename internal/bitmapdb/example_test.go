package bitmapdb_test

import (
	"fmt"

	"repro/internal/bitmapdb"
	"repro/internal/bitvec"
	"repro/internal/dram"
	"repro/internal/elpim"
)

// Example mirrors the package-doc snippet: store named bitmaps in the
// modeled module and evaluate a boolean query over them in-array.
func Example() {
	module := dram.NewModule(dram.Config{
		Banks: 2, SubarraysPerBank: 2,
		RowsPerSubarray: 32, Columns: 128, DualContactRows: 2,
	})
	eng := elpim.MustNew(elpim.DefaultConfig())
	db, err := bitmapdb.New(module, eng, 256, 10)
	if err != nil {
		panic(err)
	}

	activeW1 := bitvec.New(256)
	activeW2 := bitvec.New(256)
	male := bitvec.New(256)
	for _, i := range []int{3, 40, 99, 200} {
		activeW1.SetBit(i, true)
	}
	for _, i := range []int{40, 99, 130} {
		activeW2.SetBit(i, true)
	}
	for _, i := range []int{40, 130, 200} {
		male.SetBit(i, true)
	}
	db.Set("active_w1", activeW1)
	db.Set("active_w2", activeW2)
	db.Set("male", male)

	matches, _, err := db.Query("active_w1 & active_w2 & male")
	if err != nil {
		panic(err)
	}
	fmt.Println("matches:", matches.Popcount())
	// Output: matches: 1
}
