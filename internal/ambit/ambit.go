// Package ambit implements the Ambit baseline (Seshadri et al., MICRO'17)
// at the fidelity the ELP2IM paper compares against: triple-row-activation
// (TRA) bitwise operations staged through a reserved B-group of rows served
// by a special multi-row decoder.
//
// The standard B-group holds (Figure 9): four designated rows T0–T3 for
// TRA, two dual-contact-cell rows DCC0/DCC1 (occupying four physical rows)
// for NOT, and two control rows C0 (all zeros) and C1 (all ones) — eight
// physical rows in total. The Figure 13 sensitivity study varies the
// reserved count: 4 rows (T0–T2 + C0; AND/OR only, no accumulator
// residency), 6 rows (adds T3 + C1; an accumulator can stay resident in
// the B-group, saving one copy per chained op), 8 (the full group), and
// 10 (two spare rows that let one intermediate stay resident across
// expressions).
package ambit

import (
	"errors"
	"fmt"

	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/power"
	"repro/internal/primitive"
	"repro/internal/timing"
)

// Config parameterizes the Ambit baseline.
type Config struct {
	// Timing is the DRAM timing parameter set.
	Timing timing.Params
	// Power is the DRAM energy parameter set.
	Power power.Params
	// ReservedRows is the B-group size: 4, 6, 8 or 10.
	ReservedRows int
}

// DefaultConfig returns the canonical 8-row B-group at DDR3-1600.
func DefaultConfig() Config {
	return Config{
		Timing:       timing.DDR31600(),
		Power:        power.DDR31600(),
		ReservedRows: 8,
	}
}

// Engine is the Ambit design.
type Engine struct {
	cfg Config
	// seqs memoizes the canonical command sequence per op; the engine is
	// immutable after New, so the cached (read-only) sequences are shared.
	seqs [engine.OpCOPY + 1]primitive.Seq
	// obs holds the pre-resolved per-op observability series (process
	// global by default; Instrument re-points it).
	obs *engine.ObsSeries
}

// New returns an engine for cfg.
func New(cfg Config) (*Engine, error) {
	if err := cfg.Timing.Validate(); err != nil {
		return nil, fmt.Errorf("ambit: %w", err)
	}
	if err := cfg.Power.Validate(); err != nil {
		return nil, fmt.Errorf("ambit: %w", err)
	}
	switch cfg.ReservedRows {
	case 4, 6, 8, 10:
	default:
		return nil, errors.New("ambit: ReservedRows must be 4, 6, 8 or 10")
	}
	e := &Engine{cfg: cfg}
	for op := engine.OpNOT; op <= engine.OpCOPY; op++ {
		e.seqs[op] = e.build(op)
	}
	e.obs = engine.NewObsSeries(nil, e.Name())
	return e, nil
}

// Instrument re-points the engine's observability series at ctx (the
// accelerator-local context when owned by a facade Accelerator).
func (e *Engine) Instrument(ctx *obs.Context) {
	e.obs = engine.NewObsSeries(ctx, e.Name())
}

// MustNew returns New's engine and panics on configuration errors.
func MustNew(cfg Config) *Engine {
	e, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return e
}

// Name implements engine.Engine; the Figure legends use the reserved-row
// count as a suffix for the sensitivity variants.
func (e *Engine) Name() string {
	if e.cfg.ReservedRows == 8 {
		return "Ambit"
	}
	return fmt.Sprintf("Ambit_%d", e.cfg.ReservedRows)
}

// Config returns the engine configuration.
func (e *Engine) Config() Config { return e.cfg }

// ReservedRows implements engine.Engine.
func (e *Engine) ReservedRows() int { return e.cfg.ReservedRows }

// AreaOverheadPercent implements engine.Engine. The B-group's
// half-density region plus the special row decoder; ELP2IM's total array
// overhead is 22% less than this (§5.2).
func (e *Engine) AreaOverheadPercent() float64 {
	return 1.8 * float64(e.cfg.ReservedRows) / 8
}

// BackgroundFactor implements engine.Engine: no standby logic added.
func (e *Engine) BackgroundFactor() float64 { return 1.0 }

// CompoundOverheadFactor is 1: AAP/TRA sequences can be merged and
// reordered by the memory controller.
func (e *Engine) CompoundOverheadFactor() float64 { return 1.0 }

// Supports reports whether the operation is implementable with the
// configured B-group: without the dual-contact rows (4- and 6-row
// configurations) the complement-based ops are unavailable.
func (e *Engine) Supports(op engine.Op) bool {
	switch op {
	case engine.OpCOPY, engine.OpAND, engine.OpOR:
		return true
	case engine.OpNOT, engine.OpNAND, engine.OpNOR, engine.OpXOR, engine.OpXNOR:
		return e.cfg.ReservedRows >= 8
	default:
		return false
	}
}

// seq returns the memoized canonical command sequence for the
// three-operand form (read-only).
func (e *Engine) seq(op engine.Op) primitive.Seq {
	if op >= 0 && int(op) < len(e.seqs) && e.seqs[op] != nil {
		return e.seqs[op]
	}
	return e.build(op)
}

// build constructs the canonical command sequence for the three-operand
// form. All copies into/out of the B-group use the special decoder and
// overlap (oAAP-class, 53 ns); the TRA command itself is AP-class (49 ns).
func (e *Engine) build(op engine.Op) primitive.Seq {
	oaap := func() primitive.Step { return primitive.Step{Kind: primitive.OAAP} }
	switch op {
	case engine.OpCOPY:
		return primitive.Seq{oaap()}
	case engine.OpNOT:
		// AAP(A→DCC0); AAP(~DCC0→C)
		return primitive.Seq{oaap(), oaap()}
	case engine.OpAND, engine.OpOR:
		// AAP(A→T0); AAP(B→T1); AAP(C0/1→T2); TRA-AAP([C],T0,T1,T2)
		return primitive.Seq{oaap(), oaap(), oaap(), {Kind: primitive.TRAAAP}}
	case engine.OpNAND, engine.OpNOR:
		// The TRA result is routed through DCC0 and copied out negated.
		return primitive.Seq{oaap(), oaap(), oaap(), {Kind: primitive.TRAAAP}, oaap()}
	case engine.OpXOR, engine.OpXNOR:
		// The paper: "an XOR operation requires 7 commands ... ∼363 ns":
		// five AAPs and two TRAs.
		return primitive.Seq{oaap(), oaap(), oaap(), oaap(), oaap(),
			{Kind: primitive.TRAAP}, {Kind: primitive.TRAAP}}
	default:
		panic(fmt.Sprintf("ambit: unknown op %v", op))
	}
}

// Seq returns the canonical command sequence for op (for scheduling
// profiles and inspection).
func (e *Engine) Seq(op engine.Op) primitive.Seq { return e.seq(op) }

// ChainSeq returns the canonical per-element command sequence of the
// chained (accumulator-resident) form.
func (e *Engine) ChainSeq(op engine.Op) (primitive.Seq, error) {
	if op != engine.OpAND && op != engine.OpOR {
		return nil, fmt.Errorf("ambit: no chained form for %v", op)
	}
	if e.cfg.ReservedRows >= 6 {
		return primitive.Seq{
			{Kind: primitive.OAAP},
			{Kind: primitive.OAAP},
			{Kind: primitive.TRAAP},
		}, nil
	}
	return e.seq(op), nil
}

// NotChainSeq returns the sequence folding the complement of an operand
// into a B-group-resident accumulator: acc = acc op ¬src. The operand is
// staged through DCC0 for negation, then a TRA folds it: copy src → DCC0;
// copy ¬DCC0 → T1; copy control → T2; TRA with the accumulator triple.
// Requires the dual-contact rows (≥8 reserved).
func (e *Engine) NotChainSeq(op engine.Op) (primitive.Seq, error) {
	if op != engine.OpAND && op != engine.OpOR {
		return nil, fmt.Errorf("ambit: no complement-fold for %v", op)
	}
	if e.cfg.ReservedRows < 8 {
		return nil, fmt.Errorf("ambit: complement fold needs the dual-contact rows (have %d reserved)", e.cfg.ReservedRows)
	}
	return primitive.Seq{
		{Kind: primitive.OAAP},
		{Kind: primitive.OAAP},
		{Kind: primitive.OAAP},
		{Kind: primitive.TRAAP},
	}, nil
}

// OpStats implements engine.Engine.
func (e *Engine) OpStats(op engine.Op) engine.Stats {
	q := e.seq(op)
	return engine.Stats{
		LatencyNS:            q.Duration(e.cfg.Timing),
		EnergyNJ:             q.Energy(e.cfg.Power),
		Commands:             len(q),
		ActivateEvents:       q.ActivateEvents(),
		Wordlines:            q.Wordlines(),
		MaxWordlinesPerEvent: q.MaxWordlinesPerEvent(),
	}
}

// ChainStats implements engine.Reducer: the cost of folding one more
// operand into a resident accumulator (acc = acc op v), the inner loop of
// the Bitmap and BitWeaving case studies.
//
// With ≥6 reserved rows the accumulator stays resident in the B-group
// (triple T1,T2,T3 with the accumulator surviving in T3):
// AAP(v→T1); AAP(C→T2); TRA — 3 commands. With only 4 rows the
// accumulator must be copied in each iteration — the full 4-command op.
func (e *Engine) ChainStats(op engine.Op) (engine.Stats, error) {
	q, err := e.ChainSeq(op)
	if err != nil {
		return engine.Stats{}, err
	}
	return engine.Stats{
		LatencyNS:            q.Duration(e.cfg.Timing),
		EnergyNJ:             q.Energy(e.cfg.Power),
		Commands:             len(q),
		ActivateEvents:       q.ActivateEvents(),
		Wordlines:            q.Wordlines(),
		MaxWordlinesPerEvent: q.MaxWordlinesPerEvent(),
	}, nil
}

// CanHoldIntermediate reports whether the B-group has spare rows to keep
// an expression intermediate resident across operations (the 10-row
// configuration's advantage in Figure 13).
func (e *Engine) CanHoldIntermediate() bool { return e.cfg.ReservedRows >= 10 }

// FusedChainSeq returns the per-element command sequence that folds one
// operand into TWO resident accumulators at once — the 10-row B-group's
// advantage: the operand staging copy is paid once for both reductions
// (copy operand → T1; copy control → T2; TRA into triple A; copy control →
// T2'; TRA into triple B). Smaller B-groups cannot host two accumulator
// triples.
func (e *Engine) FusedChainSeq(op engine.Op) (primitive.Seq, error) {
	if op != engine.OpAND && op != engine.OpOR {
		return nil, fmt.Errorf("ambit: no chained form for %v", op)
	}
	if !e.CanHoldIntermediate() {
		return nil, fmt.Errorf("ambit: %d reserved rows cannot host two accumulator triples", e.cfg.ReservedRows)
	}
	return primitive.Seq{
		{Kind: primitive.OAAP}, // operand → T1 (shared by both triples)
		{Kind: primitive.OAAP}, // control row → T2
		{Kind: primitive.TRAAP},
		{Kind: primitive.OAAP}, // control row → T2'
		{Kind: primitive.TRAAP},
	}, nil
}
