package ambit

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bitvec"
	"repro/internal/dram"
	"repro/internal/engine"
)

func testSubarray() *dram.Subarray {
	return dram.NewSubarray(dram.Config{
		Banks: 1, SubarraysPerBank: 1,
		RowsPerSubarray: 16, Columns: 256, DualContactRows: 2,
	})
}

func newEngine(t *testing.T, reserved int) *Engine {
	t.Helper()
	cfg := DefaultConfig()
	cfg.ReservedRows = reserved
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestNewRejectsBadConfig(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ReservedRows = 5
	if _, err := New(cfg); err == nil {
		t.Fatal("New accepted 5 reserved rows")
	}
	cfg = DefaultConfig()
	cfg.Timing.Precharge = 0
	if _, err := New(cfg); err == nil {
		t.Fatal("New accepted invalid timing")
	}
	cfg = DefaultConfig()
	cfg.Power.ActivateEnergy = -1
	if _, err := New(cfg); err == nil {
		t.Fatal("New accepted invalid power")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew did not panic")
		}
	}()
	cfg := DefaultConfig()
	cfg.ReservedRows = 7
	MustNew(cfg)
}

func TestNames(t *testing.T) {
	if newEngine(t, 8).Name() != "Ambit" {
		t.Error("default name wrong")
	}
	if newEngine(t, 4).Name() != "Ambit_4" {
		t.Error("variant name wrong")
	}
}

func TestAllOpsMatchGolden(t *testing.T) {
	e := newEngine(t, 8)
	for _, op := range engine.BasicOps() {
		sub := testSubarray()
		rng := rand.New(rand.NewSource(int64(op)))
		a := bitvec.Random(rng, sub.Columns())
		b := bitvec.Random(rng, sub.Columns())
		sub.LoadRow(0, a)
		sub.LoadRow(1, b)
		if err := e.Execute(sub, op, 2, 0, 1); err != nil {
			t.Fatalf("%v: %v", op, err)
		}
		want := bitvec.New(sub.Columns())
		op.Golden(want, a, b)
		if !sub.RowData(2).Equal(want) {
			t.Errorf("%v: result mismatch", op)
		}
		// Operands preserved.
		if !sub.RowData(0).Equal(a) || !sub.RowData(1).Equal(b) {
			t.Errorf("%v: operand clobbered", op)
		}
	}
}

func TestCopyOp(t *testing.T) {
	e := newEngine(t, 8)
	sub := testSubarray()
	rng := rand.New(rand.NewSource(9))
	a := bitvec.Random(rng, sub.Columns())
	sub.LoadRow(0, a)
	if err := e.Execute(sub, engine.OpCOPY, 3, 0, -1); err != nil {
		t.Fatal(err)
	}
	if !sub.RowData(3).Equal(a) {
		t.Fatal("COPY mismatch")
	}
}

func TestSupportsByReservedRows(t *testing.T) {
	small := newEngine(t, 4)
	for _, op := range []engine.Op{engine.OpAND, engine.OpOR, engine.OpCOPY} {
		if !small.Supports(op) {
			t.Errorf("4-row config must support %v", op)
		}
	}
	for _, op := range []engine.Op{engine.OpNOT, engine.OpXOR, engine.OpNAND} {
		if small.Supports(op) {
			t.Errorf("4-row config must not support %v (no DCC rows)", op)
		}
	}
	full := newEngine(t, 8)
	for _, op := range engine.BasicOps() {
		if !full.Supports(op) {
			t.Errorf("8-row config must support %v", op)
		}
	}
}

func TestUnsupportedOpErrors(t *testing.T) {
	e := newEngine(t, 4)
	if err := e.Execute(testSubarray(), engine.OpXOR, 2, 0, 1); err == nil {
		t.Fatal("XOR with 4 reserved rows must error")
	}
}

func TestPaperLatencies(t *testing.T) {
	e := newEngine(t, 8)
	cases := []struct {
		op   engine.Op
		want float64
	}{
		{engine.OpNOT, 106}, // 2 AAPs
		{engine.OpAND, 212}, // 4 commands (§6.2: "Ambit requires 4 primitives")
		{engine.OpOR, 212},
		{engine.OpNAND, 265}, // 5 commands
		{engine.OpXOR, 363},  // §1: "7 commands ... totaling ∼363ns"
		{engine.OpXNOR, 363},
	}
	for _, tc := range cases {
		if got := e.OpStats(tc.op).LatencyNS; math.Abs(got-tc.want) > 1 {
			t.Errorf("%v latency = %.1f ns, want %v", tc.op, got, tc.want)
		}
	}
	if got := e.OpStats(engine.OpXOR).Commands; got != 7 {
		t.Errorf("XOR commands = %d, want 7", got)
	}
}

func TestTRAWordlinePressure(t *testing.T) {
	// Every TRA-bearing op peaks at 3 wordlines per activation — the
	// charge-pump stress ELP2IM avoids.
	e := newEngine(t, 8)
	for _, op := range []engine.Op{engine.OpAND, engine.OpOR, engine.OpXOR} {
		if got := e.OpStats(op).MaxWordlinesPerEvent; got != 3 {
			t.Errorf("%v peak wordlines/event = %d, want 3", op, got)
		}
	}
	if got := e.OpStats(engine.OpNOT).MaxWordlinesPerEvent; got != 1 {
		t.Errorf("NOT peak wordlines/event = %d, want 1", got)
	}
}

func TestChainStats(t *testing.T) {
	// ≥6 reserved rows keep the accumulator resident: 3 commands.
	for _, reserved := range []int{6, 8, 10} {
		e := newEngine(t, reserved)
		st, err := e.ChainStats(engine.OpAND)
		if err != nil {
			t.Fatal(err)
		}
		if st.Commands != 3 {
			t.Errorf("%d rows: chain commands = %d, want 3", reserved, st.Commands)
		}
	}
	// 4 rows: full 4-command op per element.
	e4 := newEngine(t, 4)
	st, err := e4.ChainStats(engine.OpAND)
	if err != nil {
		t.Fatal(err)
	}
	if st.Commands != 4 {
		t.Errorf("4 rows: chain commands = %d, want 4", st.Commands)
	}
	if _, err := e4.ChainStats(engine.OpXOR); err == nil {
		t.Error("chained XOR must be rejected")
	}
}

func TestChainImprovesWithReservedRows(t *testing.T) {
	// Figure 13: more reserved rows → faster chained ops, with
	// diminishing returns (6 → 10 identical per-op cost).
	lat := func(reserved int) float64 {
		st, err := newEngine(t, reserved).ChainStats(engine.OpAND)
		if err != nil {
			t.Fatal(err)
		}
		return st.LatencyNS
	}
	l4, l6, l10 := lat(4), lat(6), lat(10)
	if l6 >= l4 {
		t.Errorf("6-row chain (%v) must beat 4-row (%v)", l6, l4)
	}
	if l10 != l6 {
		t.Errorf("10-row chain per-op cost (%v) should equal 6-row (%v): the gain is residency, not latency", l10, l6)
	}
}

func TestNotChainSeq(t *testing.T) {
	full := newEngine(t, 8)
	q, err := full.NotChainSeq(engine.OpAND)
	if err != nil {
		t.Fatal(err)
	}
	if len(q) != 4 {
		t.Errorf("complement fold commands = %d, want 4", len(q))
	}
	if _, err := newEngine(t, 6).NotChainSeq(engine.OpAND); err == nil {
		t.Error("complement fold without DCC rows must be rejected")
	}
	if _, err := full.NotChainSeq(engine.OpXOR); err == nil {
		t.Error("complement-fold XOR must be rejected")
	}
}

func TestFusedChainSeq(t *testing.T) {
	ten := newEngine(t, 10)
	q, err := ten.FusedChainSeq(engine.OpAND)
	if err != nil {
		t.Fatal(err)
	}
	if len(q) != 5 {
		t.Errorf("fused chain commands = %d, want 5", len(q))
	}
	if _, err := newEngine(t, 8).FusedChainSeq(engine.OpAND); err == nil {
		t.Error("fused chain with 8 rows must be rejected")
	}
	if _, err := ten.FusedChainSeq(engine.OpNOT); err == nil {
		t.Error("fused NOT must be rejected")
	}
	// Fusing must beat two separate chained folds.
	tp := ten.Config().Timing
	chain, err := ten.ChainSeq(engine.OpAND)
	if err != nil {
		t.Fatal(err)
	}
	if q.Duration(tp) >= 2*chain.Duration(tp) {
		t.Error("fused chain must beat two separate chains")
	}
}

func TestCanHoldIntermediate(t *testing.T) {
	if newEngine(t, 8).CanHoldIntermediate() {
		t.Error("8-row B-group is full; cannot hold cross-expression intermediates")
	}
	if !newEngine(t, 10).CanHoldIntermediate() {
		t.Error("10-row B-group must hold an intermediate")
	}
}

func TestLayoutValidation(t *testing.T) {
	e := newEngine(t, 8)
	tiny := dram.NewSubarray(dram.Config{
		Banks: 1, SubarraysPerBank: 1, RowsPerSubarray: 4, Columns: 64, DualContactRows: 2,
	})
	if _, err := e.Layout(tiny); err == nil {
		t.Fatal("layout on a 4-row subarray must fail")
	}
}

func TestAreaOverheadScalesWithReservedRows(t *testing.T) {
	if newEngine(t, 4).AreaOverheadPercent() >= newEngine(t, 8).AreaOverheadPercent() {
		t.Error("area overhead must grow with reserved rows")
	}
	if newEngine(t, 8).BackgroundFactor() != 1 {
		t.Error("Ambit adds no background power")
	}
	if newEngine(t, 8).ReservedRows() != 8 {
		t.Error("ReservedRows accessor wrong")
	}
}

// Property: Ambit and the golden model agree on random data and rows.
func TestExecuteMatchesGoldenProperty(t *testing.T) {
	e := MustNew(DefaultConfig())
	f := func(seed int64, opRaw uint8) bool {
		op := engine.BasicOps()[int(opRaw)%7]
		sub := testSubarray()
		rng := rand.New(rand.NewSource(seed))
		a := bitvec.Random(rng, sub.Columns())
		b := bitvec.Random(rng, sub.Columns())
		sub.LoadRow(4, a)
		sub.LoadRow(7, b)
		if err := e.Execute(sub, op, 9, 4, 7); err != nil {
			return false
		}
		want := bitvec.New(sub.Columns())
		op.Golden(want, a, b)
		return sub.RowData(9).Equal(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestSeqAndCompoundAccessors(t *testing.T) {
	e := newEngine(t, 8)
	if got := len(e.Seq(engine.OpXOR)); got != 7 {
		t.Errorf("Seq(XOR) = %d commands, want 7", got)
	}
	if e.CompoundOverheadFactor() != 1 {
		t.Error("Ambit compound overhead must be 1")
	}
	q, err := e.ChainSeq(engine.OpOR)
	if err != nil || len(q) != 3 {
		t.Errorf("ChainSeq = %v, %v", q, err)
	}
	if _, err := e.ChainSeq(engine.OpXOR); err == nil {
		t.Error("ChainSeq(XOR) accepted")
	}
}
