package ambit

import (
	"fmt"

	"repro/internal/dram"
	"repro/internal/engine"
)

// BGroup names the reserved rows inside a subarray. The B-group occupies
// the highest row addresses of the data region (the region served by the
// special decoder), plus the dual-contact rows.
type BGroup struct {
	T0, T1, T2, T3 int // designated TRA rows
	C0, C1         int // control rows: all zeros / all ones
	DCC0, DCC1     int // dual-contact rows (-1 when absent)
}

// Layout computes the B-group row indices for a subarray and validates the
// geometry against the configured reserved-row count.
func (e *Engine) Layout(sub *dram.Subarray) (BGroup, error) {
	n := sub.Rows()
	if n < 8 {
		return BGroup{}, fmt.Errorf("ambit: subarray has %d rows; need at least 8", n)
	}
	g := BGroup{
		T0: n - 1, T1: n - 2, T2: n - 3, T3: n - 4,
		C0: n - 5, C1: n - 6,
		DCC0: -1, DCC1: -1,
	}
	if e.cfg.ReservedRows >= 8 {
		g.DCC0 = sub.DCCRow(0)
		g.DCC1 = sub.DCCRow(1)
	}
	return g, nil
}

// prepare writes the control constants. In hardware the C-rows are
// initialized once at boot; re-writing them is free functionally.
func prepare(sub *dram.Subarray, g BGroup) {
	zeros := sub.RowData(g.C0)
	zeros.Fill(false)
	ones := sub.RowData(g.C1)
	ones.Fill(true)
}

// copyRow performs an AAP: activate src (optionally through a negated
// dual-contact wordline), activate dst, precharge.
func copyRow(sub *dram.Subarray, src int, srcNeg bool, dst int) error {
	if err := sub.Activate(src, srcNeg); err != nil {
		return err
	}
	if err := sub.Activate(dst, false); err != nil {
		return err
	}
	sub.Precharge()
	return nil
}

// traInto performs a TRA over the triple and copies the result into dst
// (the TRAAAP command). If dst < 0 the result stays in the triple.
func traInto(sub *dram.Subarray, r0, r1, r2, dst int) error {
	if err := sub.ActivateTRA(r0, r1, r2); err != nil {
		return err
	}
	if dst >= 0 {
		if err := sub.Activate(dst, false); err != nil {
			return err
		}
	}
	sub.Precharge()
	return nil
}

// Execute implements engine.Engine: dst = op(a, b) using B-group staging.
// Operand rows are preserved. The statistics of the operation come from
// OpStats (the canonical command counts); Execute reproduces the dataflow
// functionally on the device model.
func (e *Engine) Execute(sub *dram.Subarray, op engine.Op, dst, a, b int) error {
	start := e.obs.Start()
	err := e.execute(sub, op, dst, a, b)
	e.obs.Record(op, e.OpStats(op), start, err)
	return err
}

// execute is Execute's uninstrumented body.
func (e *Engine) execute(sub *dram.Subarray, op engine.Op, dst, a, b int) error {
	if !e.Supports(op) {
		return fmt.Errorf("ambit: %v unsupported with %d reserved rows", op, e.cfg.ReservedRows)
	}
	g, err := e.Layout(sub)
	if err != nil {
		return err
	}
	prepare(sub, g)

	and := func(x, y, into int) error {
		if err := copyRow(sub, x, false, g.T0); err != nil {
			return err
		}
		if err := copyRow(sub, y, false, g.T1); err != nil {
			return err
		}
		if err := copyRow(sub, g.C0, false, g.T2); err != nil {
			return err
		}
		return traInto(sub, g.T0, g.T1, g.T2, into)
	}
	or := func(x, y, into int) error {
		if err := copyRow(sub, x, false, g.T0); err != nil {
			return err
		}
		if err := copyRow(sub, y, false, g.T1); err != nil {
			return err
		}
		if err := copyRow(sub, g.C1, false, g.T2); err != nil {
			return err
		}
		return traInto(sub, g.T0, g.T1, g.T2, into)
	}

	switch op {
	case engine.OpCOPY:
		return copyRow(sub, a, false, dst)

	case engine.OpAND:
		return and(a, b, dst)

	case engine.OpOR:
		return or(a, b, dst)

	case engine.OpNOT:
		if err := copyRow(sub, a, false, g.DCC0); err != nil {
			return err
		}
		return copyRow(sub, g.DCC0, true, dst)

	case engine.OpNAND, engine.OpNOR:
		f := and
		if op == engine.OpNOR {
			f = or
		}
		if err := f(a, b, g.DCC0); err != nil {
			return err
		}
		return copyRow(sub, g.DCC0, true, dst)

	case engine.OpXOR, engine.OpXNOR:
		// a·¬b into T3, ¬a·b into the triple, then OR them.
		if err := copyRow(sub, b, false, g.DCC0); err != nil {
			return err
		}
		if err := copyRow(sub, a, false, g.T0); err != nil {
			return err
		}
		if err := copyRow(sub, g.DCC0, true, g.T1); err != nil {
			return err
		}
		if err := copyRow(sub, g.C0, false, g.T2); err != nil {
			return err
		}
		if err := traInto(sub, g.T0, g.T1, g.T2, g.T3); err != nil { // T3 = a·¬b
			return err
		}
		if err := copyRow(sub, a, false, g.DCC0); err != nil {
			return err
		}
		if err := copyRow(sub, g.DCC0, true, g.T0); err != nil {
			return err
		}
		if err := copyRow(sub, b, false, g.T1); err != nil {
			return err
		}
		if err := copyRow(sub, g.C0, false, g.T2); err != nil {
			return err
		}
		if err := traInto(sub, g.T0, g.T1, g.T2, -1); err != nil { // triple = ¬a·b
			return err
		}
		if err := copyRow(sub, g.T3, false, g.T1); err != nil {
			return err
		}
		if err := copyRow(sub, g.C1, false, g.T2); err != nil {
			return err
		}
		if op == engine.OpXOR {
			return traInto(sub, g.T0, g.T1, g.T2, dst)
		}
		if err := traInto(sub, g.T0, g.T1, g.T2, g.DCC1); err != nil {
			return err
		}
		return copyRow(sub, g.DCC1, true, dst)

	default:
		return fmt.Errorf("ambit: unknown op %v", op)
	}
}
