package layout

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/ambit"
	"repro/internal/bitvec"
	"repro/internal/dram"
	"repro/internal/drisa"
	"repro/internal/elpim"
	"repro/internal/engine"
)

func smallModule() *dram.Module {
	return dram.NewModule(dram.Config{
		Banks: 2, SubarraysPerBank: 2,
		RowsPerSubarray: 16, Columns: 128, DualContactRows: 2,
	})
}

func newAlloc(t *testing.T, scratch int) *Allocator {
	t.Helper()
	a, err := NewAllocator(smallModule(), scratch)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestNewAllocatorErrors(t *testing.T) {
	if _, err := NewAllocator(nil, 0); err == nil {
		t.Error("nil module accepted")
	}
	if _, err := NewAllocator(smallModule(), -1); err == nil {
		t.Error("negative scratch accepted")
	}
	if _, err := NewAllocator(smallModule(), 16); err == nil {
		t.Error("scratch >= rows accepted")
	}
}

func TestAllocPlacement(t *testing.T) {
	a := newAlloc(t, 6)
	// 5 stripes across 2 banks × 2 subarrays.
	v, err := a.Alloc("v", 128*4+10)
	if err != nil {
		t.Fatal(err)
	}
	if v.Stripes() != 5 {
		t.Fatalf("stripes = %d, want 5", v.Stripes())
	}
	// Stripe homes must be a pure function of the stripe index.
	wantHomes := [][2]int{{0, 0}, {1, 0}, {0, 1}, {1, 1}, {0, 0}}
	for s, want := range wantHomes {
		p := v.Placement(s)
		if p.Bank != want[0] || p.Subarray != want[1] {
			t.Errorf("stripe %d at (%d,%d), want (%d,%d)", s, p.Bank, p.Subarray, want[0], want[1])
		}
		if p.Row >= a.ScratchBase() {
			t.Errorf("stripe %d allocated into scratch region (row %d)", s, p.Row)
		}
	}
	if v.Len() != 128*4+10 || v.Name() != "v" {
		t.Error("metadata wrong")
	}
}

func TestCoLocationAcrossVectors(t *testing.T) {
	a := newAlloc(t, 6)
	x, err := a.Alloc("x", 1000)
	if err != nil {
		t.Fatal(err)
	}
	y, err := a.Alloc("y", 1000)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < x.Stripes(); s++ {
		px, py := x.Placement(s), y.Placement(s)
		if px.Bank != py.Bank || px.Subarray != py.Subarray {
			t.Fatalf("stripe %d not co-located: %+v vs %+v", s, px, py)
		}
		if px.Row == py.Row {
			t.Fatalf("stripe %d: two vectors share row %d", s, px.Row)
		}
	}
}

func TestExhaustionAndRollback(t *testing.T) {
	a := newAlloc(t, 14) // only 2 usable rows per subarray
	free := a.FreeRows()
	// Each 128-bit vector takes one row in subarray (0,0).
	if _, err := a.Alloc("a", 128); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Alloc("b", 128); err != nil {
		t.Fatal(err)
	}
	// Third must fail (subarray (0,0) has 2 rows), and roll back cleanly.
	if _, err := a.Alloc("c", 128); err == nil {
		t.Fatal("over-allocation accepted")
	}
	if got := a.FreeRows(); got != free-2 {
		t.Fatalf("free rows = %d after failed alloc, want %d", got, free-2)
	}
}

func TestFreeAndReuse(t *testing.T) {
	a := newAlloc(t, 6)
	v, err := a.Alloc("v", 128)
	if err != nil {
		t.Fatal(err)
	}
	before := a.FreeRows()
	if err := a.Free(v); err != nil {
		t.Fatal(err)
	}
	if a.FreeRows() != before+1 {
		t.Fatal("free did not return the row")
	}
	if err := a.Free(v); err == nil {
		t.Fatal("double free accepted")
	}
	if _, err := a.Read(v); err == nil {
		t.Fatal("use after free accepted")
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	a := newAlloc(t, 6)
	rng := rand.New(rand.NewSource(1))
	data := bitvec.Random(rng, 500)
	v, err := a.Alloc("v", 500)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Write(v, data); err != nil {
		t.Fatal(err)
	}
	back, err := a.Read(v)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(data) {
		t.Fatal("round trip mismatch")
	}
	if err := a.Write(v, bitvec.New(99)); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestExecuteResidentVectors(t *testing.T) {
	engines := map[string]engine.Engine{
		"elpim": elpim.MustNew(elpim.DefaultConfig()),
		"ambit": ambit.MustNew(ambit.DefaultConfig()),
		"drisa": drisa.MustNew(drisa.DefaultConfig()),
	}
	for name, eng := range engines {
		t.Run(name, func(t *testing.T) {
			a := newAlloc(t, 8) // leave the top 8 rows for engine staging
			rng := rand.New(rand.NewSource(2))
			const n = 700
			xd := bitvec.Random(rng, n)
			yd := bitvec.Random(rng, n)
			x, err := a.Alloc("x", n)
			if err != nil {
				t.Fatal(err)
			}
			y, err := a.Alloc("y", n)
			if err != nil {
				t.Fatal(err)
			}
			dst, err := a.Alloc("dst", n)
			if err != nil {
				t.Fatal(err)
			}
			if err := a.Write(x, xd); err != nil {
				t.Fatal(err)
			}
			if err := a.Write(y, yd); err != nil {
				t.Fatal(err)
			}
			ops, err := a.Execute(eng, engine.OpXOR, dst, x, y)
			if err != nil {
				t.Fatal(err)
			}
			if ops != dst.Stripes() {
				t.Fatalf("ops = %d, want %d", ops, dst.Stripes())
			}
			got, err := a.Read(dst)
			if err != nil {
				t.Fatal(err)
			}
			want := bitvec.New(n).Xor(xd, yd)
			if !got.Equal(want) {
				t.Fatal("resident XOR mismatch")
			}
			// Operands still intact in DRAM.
			gx, err := a.Read(x)
			if err != nil {
				t.Fatal(err)
			}
			if !gx.Equal(xd) {
				t.Fatal("operand clobbered")
			}
		})
	}
}

func TestExecuteUnary(t *testing.T) {
	a := newAlloc(t, 8)
	eng := elpim.MustNew(elpim.DefaultConfig())
	rng := rand.New(rand.NewSource(3))
	const n = 300
	xd := bitvec.Random(rng, n)
	x, _ := a.Alloc("x", n)
	dst, _ := a.Alloc("dst", n)
	if err := a.Write(x, xd); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Execute(eng, engine.OpNOT, dst, x, nil); err != nil {
		t.Fatal(err)
	}
	got, _ := a.Read(dst)
	if !got.Equal(bitvec.New(n).Not(xd)) {
		t.Fatal("resident NOT mismatch")
	}
}

func TestExecuteErrors(t *testing.T) {
	a := newAlloc(t, 8)
	eng := elpim.MustNew(elpim.DefaultConfig())
	x, _ := a.Alloc("x", 128)
	y, _ := a.Alloc("y", 256)
	dst, _ := a.Alloc("dst", 128)
	if _, err := a.Execute(eng, engine.OpAND, dst, x, y); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := a.Execute(eng, engine.OpAND, dst, x, nil); err == nil {
		t.Error("nil second operand accepted")
	}
	other := newAlloc(t, 8)
	ox, _ := other.Alloc("ox", 128)
	if _, err := a.Execute(eng, engine.OpNOT, dst, ox, nil); err == nil {
		t.Error("foreign vector accepted")
	}
}

// Property: alloc/free cycles conserve rows and round trips hold.
func TestAllocFreeConservationProperty(t *testing.T) {
	f := func(seed int64, sizes []uint16) bool {
		if len(sizes) > 6 {
			sizes = sizes[:6]
		}
		a, err := NewAllocator(smallModule(), 8)
		if err != nil {
			return false
		}
		start := a.FreeRows()
		rng := rand.New(rand.NewSource(seed))
		var live []*Vector
		for _, sz := range sizes {
			n := int(sz)%900 + 1
			v, err := a.Alloc("v", n)
			if err != nil {
				continue // exhaustion is fine; rollback checked below
			}
			data := bitvec.Random(rng, n)
			if err := a.Write(v, data); err != nil {
				return false
			}
			back, err := a.Read(v)
			if err != nil || !back.Equal(data) {
				return false
			}
			live = append(live, v)
		}
		for _, v := range live {
			if err := a.Free(v); err != nil {
				return false
			}
		}
		return a.FreeRows() == start
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
