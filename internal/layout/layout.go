// Package layout places bulk bit-vectors into a DRAM module for in-memory
// computing: each vector is striped row-by-row across banks and subarrays,
// and stripes with the same index always land in the same subarray, so any
// two allocated vectors are automatically co-located operand-by-operand —
// the placement invariant every intra-subarray PIM design needs.
//
// The allocator manages per-subarray row occupancy (keeping the engines'
// scratch and reserved rows free), supports allocation, freeing, host
// read/write, and row-accurate in-DRAM operations between resident
// vectors without any per-op re-staging.
package layout

import (
	"errors"
	"fmt"

	"repro/internal/bitvec"
	"repro/internal/dram"
	"repro/internal/engine"
)

// Placement locates one stripe of a vector.
type Placement struct {
	Bank, Subarray, Row int
}

// Vector is a DRAM-resident bulk bit-vector.
type Vector struct {
	name    string
	bits    int
	stripes []Placement
	alloc   *Allocator
	freed   bool
}

// Name returns the allocation name.
func (v *Vector) Name() string { return v.name }

// Len returns the length in bits.
func (v *Vector) Len() int { return v.bits }

// Stripes returns the number of row stripes.
func (v *Vector) Stripes() int { return len(v.stripes) }

// Placement returns stripe s's location.
func (v *Vector) Placement(s int) Placement { return v.stripes[s] }

// Allocator manages row occupancy across a module.
type Allocator struct {
	module *dram.Module
	// free[bank][subarray] is the stack of free data-row indices.
	free [][][]int
	// scratch rows per subarray are excluded from allocation.
	scratchRows int
}

// NewAllocator wraps a module. scratchRows data rows at the top of every
// subarray (plus all dual-contact rows) are kept free for the engines'
// staging (Ambit's B-group, DRISA's scratch, expression temps).
func NewAllocator(module *dram.Module, scratchRows int) (*Allocator, error) {
	if module == nil {
		return nil, errors.New("layout: nil module")
	}
	cfg := module.Config()
	if scratchRows < 0 || scratchRows >= cfg.RowsPerSubarray {
		return nil, fmt.Errorf("layout: scratchRows %d out of range [0,%d)", scratchRows, cfg.RowsPerSubarray)
	}
	a := &Allocator{module: module, scratchRows: scratchRows}
	a.free = make([][][]int, module.Banks())
	usable := cfg.RowsPerSubarray - scratchRows
	for b := range a.free {
		a.free[b] = make([][]int, cfg.SubarraysPerBank)
		for s := range a.free[b] {
			rows := make([]int, usable)
			// Allocate low rows first (stack holds them reversed).
			for i := range rows {
				rows[i] = usable - 1 - i
			}
			a.free[b][s] = rows
		}
	}
	return a, nil
}

// Module returns the underlying module.
func (a *Allocator) Module() *dram.Module { return a.module }

// ScratchBase returns the first scratch row index in every subarray.
func (a *Allocator) ScratchBase() int {
	return a.module.Config().RowsPerSubarray - a.scratchRows
}

// stripeHome returns the (bank, subarray) of stripe s — a pure function of
// the stripe index, which is what co-locates all vectors stripe-by-stripe.
func (a *Allocator) stripeHome(s int) (int, int) {
	banks := a.module.Banks()
	return s % banks, (s / banks) % a.module.Config().SubarraysPerBank
}

// FreeRows returns the total number of free data rows.
func (a *Allocator) FreeRows() int {
	n := 0
	for b := range a.free {
		for s := range a.free[b] {
			n += len(a.free[b][s])
		}
	}
	return n
}

// Alloc reserves rows for an nbits vector.
func (a *Allocator) Alloc(name string, nbits int) (*Vector, error) {
	if nbits <= 0 {
		return nil, errors.New("layout: vector length must be positive")
	}
	cols := a.module.Config().Columns
	stripes := (nbits + cols - 1) / cols
	v := &Vector{name: name, bits: nbits, alloc: a, stripes: make([]Placement, stripes)}
	for s := 0; s < stripes; s++ {
		b, sa := a.stripeHome(s)
		fl := &a.free[b][sa]
		if len(*fl) == 0 {
			// Roll back partial allocation.
			v.stripes = v.stripes[:s]
			a.release(v)
			return nil, fmt.Errorf("layout: subarray (%d,%d) exhausted allocating %q", b, sa, name)
		}
		row := (*fl)[len(*fl)-1]
		*fl = (*fl)[:len(*fl)-1]
		v.stripes[s] = Placement{Bank: b, Subarray: sa, Row: row}
	}
	return v, nil
}

// release returns a vector's rows to the free lists.
func (a *Allocator) release(v *Vector) {
	for _, p := range v.stripes {
		a.free[p.Bank][p.Subarray] = append(a.free[p.Bank][p.Subarray], p.Row)
	}
}

// Free releases the vector's rows. Double-free is an error.
func (a *Allocator) Free(v *Vector) error {
	if v == nil || v.alloc != a {
		return errors.New("layout: vector not owned by this allocator")
	}
	if v.freed {
		return fmt.Errorf("layout: double free of %q", v.name)
	}
	v.freed = true
	a.release(v)
	return nil
}

// Write stores host data into the resident vector.
func (a *Allocator) Write(v *Vector, data *bitvec.Vector) error {
	if err := a.check(v); err != nil {
		return err
	}
	if data.Len() != v.bits {
		return fmt.Errorf("layout: data length %d != vector length %d", data.Len(), v.bits)
	}
	cols := a.module.Config().Columns
	stripe := bitvec.New(cols)
	for s, p := range v.stripes {
		copyStripe(stripe, data, s, cols)
		a.module.Bank(p.Bank).Subarray(p.Subarray).LoadRow(p.Row, stripe)
	}
	return nil
}

// Read copies the resident vector back to the host.
func (a *Allocator) Read(v *Vector) (*bitvec.Vector, error) {
	if err := a.check(v); err != nil {
		return nil, err
	}
	cols := a.module.Config().Columns
	out := bitvec.New(v.bits)
	for s, p := range v.stripes {
		row := a.module.Bank(p.Bank).Subarray(p.Subarray).RowData(p.Row)
		base := s * cols
		for i := 0; i < cols && base+i < v.bits; i++ {
			out.SetBit(base+i, row.Bit(i))
		}
	}
	return out, nil
}

func (a *Allocator) check(v *Vector) error {
	if v == nil || v.alloc != a {
		return errors.New("layout: vector not owned by this allocator")
	}
	if v.freed {
		return fmt.Errorf("layout: use after free of %q", v.name)
	}
	return nil
}

// copyStripe extracts stripe s of src into row.
func copyStripe(row *bitvec.Vector, src *bitvec.Vector, s, cols int) {
	row.Fill(false)
	base := s * cols
	for i := 0; i < cols && base+i < src.Len(); i++ {
		row.SetBit(i, src.Bit(base+i))
	}
}

// Execute performs dst = op(x, y) between resident vectors through an
// engine, stripe by stripe, with no host staging: the co-location
// invariant guarantees each stripe triple shares a subarray. y may be nil
// for unary ops. It returns the per-module operation count.
func (a *Allocator) Execute(eng engine.Engine, op engine.Op, dst, x, y *Vector) (int, error) {
	if err := a.check(dst); err != nil {
		return 0, err
	}
	if err := a.check(x); err != nil {
		return 0, err
	}
	if !op.Unary() {
		if err := a.check(y); err != nil {
			return 0, err
		}
		if y.bits != x.bits {
			return 0, errors.New("layout: operand length mismatch")
		}
	}
	if dst.bits != x.bits {
		return 0, errors.New("layout: destination length mismatch")
	}
	for s := range dst.stripes {
		pd, px := dst.stripes[s], x.stripes[s]
		if pd.Bank != px.Bank || pd.Subarray != px.Subarray {
			return 0, fmt.Errorf("layout: co-location invariant violated at stripe %d", s)
		}
		sub := a.module.Bank(pd.Bank).Subarray(pd.Subarray)
		yRow := -1
		if !op.Unary() {
			py := y.stripes[s]
			if py.Bank != pd.Bank || py.Subarray != pd.Subarray {
				return 0, fmt.Errorf("layout: co-location invariant violated at stripe %d", s)
			}
			yRow = py.Row
		}
		if err := eng.Execute(sub, op, pd.Row, px.Row, yRow); err != nil {
			return 0, fmt.Errorf("layout: stripe %d: %w", s, err)
		}
	}
	return len(dst.stripes), nil
}
