package dram

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bitvec"
)

func smallCfg() Config {
	return Config{
		Banks:            2,
		SubarraysPerBank: 2,
		RowsPerSubarray:  8,
		Columns:          128,
		DualContactRows:  2,
	}
}

func TestConfigValidate(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero banks", func(c *Config) { c.Banks = 0 }},
		{"zero subarrays", func(c *Config) { c.SubarraysPerBank = 0 }},
		{"zero rows", func(c *Config) { c.RowsPerSubarray = 0 }},
		{"zero columns", func(c *Config) { c.Columns = 0 }},
		{"negative dcc", func(c *Config) { c.DualContactRows = -1 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := Default()
			tc.mutate(&c)
			if err := c.Validate(); err == nil {
				t.Error("Validate accepted invalid config")
			}
		})
	}
}

func TestNewModuleGeometry(t *testing.T) {
	m := NewModule(smallCfg())
	if m.Banks() != 2 {
		t.Fatalf("banks = %d", m.Banks())
	}
	if m.Bank(0).Subarrays() != 2 {
		t.Fatalf("subarrays = %d", m.Bank(0).Subarrays())
	}
	s := m.Bank(1).Subarray(1)
	if s.Rows() != 8 || s.Columns() != 128 {
		t.Fatalf("geometry %dx%d", s.Rows(), s.Columns())
	}
	if !s.IsDCC(8) || !s.IsDCC(9) || s.IsDCC(7) {
		t.Fatal("DCC rows misplaced")
	}
	if s.DCCRow(0) != 8 || s.DCCRow(1) != 9 {
		t.Fatal("DCCRow indices wrong")
	}
}

func TestNewModulePanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewModule with invalid config did not panic")
		}
	}()
	NewModule(Config{})
}

func TestOutOfRangeAccessorsPanic(t *testing.T) {
	m := NewModule(smallCfg())
	for _, fn := range []func(){
		func() { m.Bank(2) },
		func() { m.Bank(-1) },
		func() { m.Bank(0).Subarray(2) },
		func() { m.Bank(0).Subarray(0).RowData(10) },
		func() { m.Bank(0).Subarray(0).DCCRow(2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("out-of-range accessor did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestRegularActivateReadsRow(t *testing.T) {
	s := NewSubarray(smallCfg())
	rng := rand.New(rand.NewSource(1))
	data := bitvec.Random(rng, 128)
	s.LoadRow(3, data)
	if err := s.Activate(3, false); err != nil {
		t.Fatal(err)
	}
	if !s.Buffer().Equal(data) {
		t.Fatal("row buffer does not match stored row")
	}
	if s.State() != StateActivated {
		t.Fatalf("state = %v", s.State())
	}
	// Non-destructive: the cell still holds the data after restore.
	if !s.RowData(3).Equal(data) {
		t.Fatal("restore failed")
	}
	s.Precharge()
	if s.State() != StatePrecharged {
		t.Fatal("precharge failed")
	}
}

func TestRowCloneCopiesBuffer(t *testing.T) {
	s := NewSubarray(smallCfg())
	rng := rand.New(rand.NewSource(2))
	data := bitvec.Random(rng, 128)
	s.LoadRow(0, data)
	if err := s.Activate(0, false); err != nil {
		t.Fatal(err)
	}
	if err := s.Activate(5, false); err != nil { // back-to-back: RowClone
		t.Fatal(err)
	}
	if !s.RowData(5).Equal(data) {
		t.Fatal("RowClone did not copy the buffer into the destination row")
	}
	if !s.RowData(0).Equal(data) {
		t.Fatal("RowClone clobbered the source row")
	}
}

func TestDualContactNegatedRead(t *testing.T) {
	s := NewSubarray(smallCfg())
	rng := rand.New(rand.NewSource(3))
	data := bitvec.Random(rng, 128)
	dcc := s.DCCRow(0)
	s.LoadRow(dcc, data)
	if err := s.Activate(dcc, true); err != nil {
		t.Fatal(err)
	}
	want := bitvec.New(128).Not(data)
	if !s.Buffer().Equal(want) {
		t.Fatal("negated wordline did not sense the complement")
	}
}

func TestDualContactNegatedWrite(t *testing.T) {
	// RowClone into a DCC through the negated wordline stores the
	// complement: Ambit's NOT is AAP(A, DCC) then AAP(DCC-bar, C).
	s := NewSubarray(smallCfg())
	rng := rand.New(rand.NewSource(4))
	data := bitvec.Random(rng, 128)
	s.LoadRow(1, data)
	dcc := s.DCCRow(0)

	// AAP(A, DCC): activate A then DCC through the normal contact.
	if err := s.Activate(1, false); err != nil {
		t.Fatal(err)
	}
	if err := s.Activate(dcc, false); err != nil {
		t.Fatal(err)
	}
	s.Precharge()
	// AAP(DCC-bar, C): read complement, copy into row 2.
	if err := s.Activate(dcc, true); err != nil {
		t.Fatal(err)
	}
	if err := s.Activate(2, false); err != nil {
		t.Fatal(err)
	}
	s.Precharge()

	want := bitvec.New(128).Not(data)
	if !s.RowData(2).Equal(want) {
		t.Fatal("NOT through DCC produced wrong result")
	}
}

func TestNegatedActivateRejectsRegularRow(t *testing.T) {
	s := NewSubarray(smallCfg())
	if err := s.Activate(0, true); err == nil {
		t.Fatal("negated activate of a regular row must error")
	}
}

func TestPseudoPrechargeOR(t *testing.T) {
	// The two-cycle in-place OR: APP(A) then AP(B) leaves A OR B in B.
	s := NewSubarray(smallCfg())
	rng := rand.New(rand.NewSource(5))
	a := bitvec.Random(rng, 128)
	b := bitvec.Random(rng, 128)
	s.LoadRow(0, a)
	s.LoadRow(1, b)

	if err := s.Activate(0, false); err != nil {
		t.Fatal(err)
	}
	if err := s.PseudoPrecharge(RetainOnes); err != nil {
		t.Fatal(err)
	}
	if s.State() != StatePseudoPrecharged {
		t.Fatalf("state = %v", s.State())
	}
	if err := s.Activate(1, false); err != nil {
		t.Fatal(err)
	}
	s.Precharge()

	want := bitvec.New(128).Or(a, b)
	if !s.RowData(1).Equal(want) {
		t.Fatal("in-place OR wrong")
	}
	if !s.RowData(0).Equal(a) {
		t.Fatal("first operand clobbered")
	}
}

func TestPseudoPrechargeAND(t *testing.T) {
	s := NewSubarray(smallCfg())
	rng := rand.New(rand.NewSource(6))
	a := bitvec.Random(rng, 128)
	b := bitvec.Random(rng, 128)
	s.LoadRow(0, a)
	s.LoadRow(1, b)

	if err := s.Activate(0, false); err != nil {
		t.Fatal(err)
	}
	if err := s.PseudoPrecharge(RetainZeros); err != nil {
		t.Fatal(err)
	}
	if err := s.Activate(1, false); err != nil {
		t.Fatal(err)
	}
	want := bitvec.New(128).And(a, b)
	if !s.RowData(1).Equal(want) {
		t.Fatal("in-place AND wrong")
	}
}

func TestPseudoPrechargeRequiresActivated(t *testing.T) {
	s := NewSubarray(smallCfg())
	if err := s.PseudoPrecharge(RetainOnes); err == nil {
		t.Fatal("pseudo-precharge from precharged state must error")
	}
}

func TestTRAComputesMajority(t *testing.T) {
	s := NewSubarray(smallCfg())
	rng := rand.New(rand.NewSource(7))
	a := bitvec.Random(rng, 128)
	b := bitvec.Random(rng, 128)
	c := bitvec.Random(rng, 128)
	s.LoadRow(0, a)
	s.LoadRow(1, b)
	s.LoadRow(2, c)
	if err := s.ActivateTRA(0, 1, 2); err != nil {
		t.Fatal(err)
	}
	want := bitvec.New(128).Majority(a, b, c)
	for _, r := range []int{0, 1, 2} {
		if !s.RowData(r).Equal(want) {
			t.Fatalf("TRA row %d does not hold the majority", r)
		}
	}
	if !s.Buffer().Equal(want) {
		t.Fatal("TRA buffer wrong")
	}
}

func TestTRARequiresPrecharged(t *testing.T) {
	s := NewSubarray(smallCfg())
	if err := s.Activate(0, false); err != nil {
		t.Fatal(err)
	}
	if err := s.ActivateTRA(0, 1, 2); err == nil {
		t.Fatal("TRA from activated state must error")
	}
}

func TestTRARejectsDuplicateRows(t *testing.T) {
	s := NewSubarray(smallCfg())
	if err := s.ActivateTRA(0, 0, 1); err == nil {
		t.Fatal("TRA with duplicate rows must error")
	}
}

func TestActivationStats(t *testing.T) {
	s := NewSubarray(smallCfg())
	_ = s.Activate(0, false)
	_ = s.Activate(1, false)
	s.Precharge()
	_ = s.ActivateTRA(2, 3, 4)
	if s.Activations != 3 {
		t.Fatalf("activations = %d, want 3", s.Activations)
	}
	if s.Wordlines != 5 {
		t.Fatalf("wordlines = %d, want 5 (1+1+3)", s.Wordlines)
	}
	s.ResetStats()
	if s.Activations != 0 || s.Wordlines != 0 {
		t.Fatal("ResetStats failed")
	}
}

func TestStateAndModeStrings(t *testing.T) {
	if StatePrecharged.String() != "precharged" ||
		StateActivated.String() != "activated" ||
		StatePseudoPrecharged.String() != "pseudo-precharged" {
		t.Error("state names wrong")
	}
	if RetainOnes.String() != "retain-ones(OR)" || RetainZeros.String() != "retain-zeros(AND)" {
		t.Error("mode names wrong")
	}
	if State(9).String() == "" {
		t.Error("unknown state must render")
	}
}

// Property: the in-place two-cycle op equals the boolean op for random rows.
func TestPseudoPrechargeMatchesGoldenProperty(t *testing.T) {
	cfg := smallCfg()
	f := func(seed int64, retainZeros bool) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewSubarray(cfg)
		a := bitvec.Random(rng, cfg.Columns)
		b := bitvec.Random(rng, cfg.Columns)
		s.LoadRow(0, a)
		s.LoadRow(1, b)
		mode := RetainOnes
		want := bitvec.New(cfg.Columns).Or(a, b)
		if retainZeros {
			mode = RetainZeros
			want = bitvec.New(cfg.Columns).And(a, b)
		}
		if s.Activate(0, false) != nil || s.PseudoPrecharge(mode) != nil || s.Activate(1, false) != nil {
			return false
		}
		return s.RowData(1).Equal(want) && s.Buffer().Equal(want)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: RowClone chains preserve data through arbitrary hops.
func TestRowCloneChainProperty(t *testing.T) {
	cfg := smallCfg()
	f := func(seed int64, hops uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewSubarray(cfg)
		data := bitvec.Random(rng, cfg.Columns)
		s.LoadRow(0, data)
		cur := 0
		if s.Activate(cur, false) != nil {
			return false
		}
		n := int(hops)%6 + 1
		for i := 0; i < n; i++ {
			next := (cur + 1) % cfg.RowsPerSubarray
			if s.Activate(next, false) != nil {
				return false
			}
			cur = next
		}
		s.Precharge()
		return s.RowData(cur).Equal(data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSubarrayIndependence(t *testing.T) {
	// Operations on one subarray must never disturb another: interleave
	// pseudo-precharge sequences across two subarrays of one bank.
	m := NewModule(smallCfg())
	s0 := m.Bank(0).Subarray(0)
	s1 := m.Bank(0).Subarray(1)
	rng := rand.New(rand.NewSource(11))
	a0 := bitvec.Random(rng, 128)
	b0 := bitvec.Random(rng, 128)
	a1 := bitvec.Random(rng, 128)
	b1 := bitvec.Random(rng, 128)
	s0.LoadRow(0, a0)
	s0.LoadRow(1, b0)
	s1.LoadRow(0, a1)
	s1.LoadRow(1, b1)

	// Interleaved: open s0, pseudo-precharge s0, then a full op on s1,
	// then complete s0's op.
	if err := s0.Activate(0, false); err != nil {
		t.Fatal(err)
	}
	if err := s0.PseudoPrecharge(RetainOnes); err != nil {
		t.Fatal(err)
	}
	if err := s1.Activate(0, false); err != nil {
		t.Fatal(err)
	}
	if err := s1.PseudoPrecharge(RetainZeros); err != nil {
		t.Fatal(err)
	}
	if err := s1.Activate(1, false); err != nil {
		t.Fatal(err)
	}
	s1.Precharge()
	if err := s0.Activate(1, false); err != nil {
		t.Fatal(err)
	}
	s0.Precharge()

	want0 := bitvec.New(128).Or(a0, b0)
	want1 := bitvec.New(128).And(a1, b1)
	if !s0.RowData(1).Equal(want0) {
		t.Fatal("subarray 0 result corrupted by interleaving")
	}
	if !s1.RowData(1).Equal(want1) {
		t.Fatal("subarray 1 result corrupted by interleaving")
	}
}

// Property: an arbitrary interleaving of in-place ops across subarrays
// matches per-subarray sequential execution.
func TestInterleavingEquivalenceProperty(t *testing.T) {
	cfg := smallCfg()
	f := func(seed int64, schedule []uint8) bool {
		if len(schedule) > 12 {
			schedule = schedule[:12]
		}
		rng := rand.New(rand.NewSource(seed))
		m := NewModule(cfg)
		subs := []*Subarray{m.Bank(0).Subarray(0), m.Bank(1).Subarray(0)}
		// Shadow model per subarray.
		shadow := make([][]*bitvec.Vector, len(subs))
		for i, s := range subs {
			shadow[i] = make([]*bitvec.Vector, 4)
			for r := 0; r < 4; r++ {
				shadow[i][r] = bitvec.Random(rng, cfg.Columns)
				s.LoadRow(r, shadow[i][r])
			}
		}
		// Each schedule entry: pick subarray, pick (src,dst,mode), run the
		// two-cycle op on the device and on the shadow.
		for _, step := range schedule {
			i := int(step) % len(subs)
			src := int(step/2) % 4
			dst := (src + 1 + int(step/8)%3) % 4
			mode := RetainOnes
			if step%2 == 0 {
				mode = RetainZeros
			}
			s := subs[i]
			if s.Activate(src, false) != nil || s.PseudoPrecharge(mode) != nil ||
				s.Activate(dst, false) != nil {
				return false
			}
			s.Precharge()
			if mode == RetainOnes {
				shadow[i][dst].Or(shadow[i][src], shadow[i][dst])
			} else {
				shadow[i][dst].And(shadow[i][src], shadow[i][dst])
			}
		}
		for i, s := range subs {
			for r := 0; r < 4; r++ {
				if !s.RowData(r).Equal(shadow[i][r]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestConfigTotalRows(t *testing.T) {
	c := smallCfg()
	if c.TotalRows() != c.RowsPerSubarray+c.DualContactRows {
		t.Fatal("TotalRows wrong")
	}
}

// TestCommandsAllocFree is the device-model allocation gate: with the
// persistent scratch rows, no command primitive allocates — in particular
// Activate in the pseudo-precharged state (the ELP2IM in-place op, the
// hottest command of the fallback executor) and ActivateTRA.
func TestCommandsAllocFree(t *testing.T) {
	s := NewSubarray(smallCfg())
	rng := rand.New(rand.NewSource(3))
	s.LoadRow(0, bitvec.Random(rng, 128))
	s.LoadRow(1, bitvec.Random(rng, 128))
	s.LoadRow(2, bitvec.Random(rng, 128))

	mustOK := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	// Pseudo-precharged Activate, regular and negated, both retain modes.
	allocs := testing.AllocsPerRun(100, func() {
		mustOK(s.Activate(0, false))
		mustOK(s.PseudoPrecharge(RetainZeros))
		mustOK(s.Activate(1, false))
		mustOK(s.PseudoPrecharge(RetainOnes))
		mustOK(s.Activate(s.DCCRow(0), true))
		s.Precharge()
	})
	if allocs != 0 {
		t.Fatalf("pseudo-precharged Activate allocates %.1f/op, want 0", allocs)
	}
	// TRA.
	allocs = testing.AllocsPerRun(100, func() {
		mustOK(s.ActivateTRA(0, 1, 2))
		s.Precharge()
	})
	if allocs != 0 {
		t.Fatalf("ActivateTRA allocates %.1f/op, want 0", allocs)
	}
}
