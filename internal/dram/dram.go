// Package dram is a functional (bit-accurate) model of a DRAM device at
// the granularity the in-memory computing engines need: banks of subarrays,
// each subarray a matrix of 1T1C cell rows sharing one row of sense
// amplifiers.
//
// The model implements the full mechanism set the reproduced designs rely
// on:
//
//   - regular activate / precharge with destructive-read + restore,
//   - RowClone: a second activate while the row buffer is full copies the
//     buffer into the newly opened row,
//   - Ambit's triple-row activation (TRA): simultaneous activation of three
//     rows charge-shares to the bitwise majority, which is restored into
//     all three rows,
//   - dual-contact cells (DCC) whose negated wordline senses and restores
//     the complement,
//   - ELP2IM's pseudo-precharge: after an activate, the SA supply shift
//     retains full-rail bitline values ('1' for OR, '0' for AND) while
//     erasing the others to Vdd/2; the next activate then either overwrites
//     the accessed cells or senses them normally, computing OR/AND in place.
//
// The package is purely functional — timing and energy are accounted by the
// engines in internal/elpim, internal/ambit, and internal/drisa.
package dram

import (
	"errors"
	"fmt"

	"repro/internal/bitvec"
)

// Config describes the geometry of a module.
type Config struct {
	// Banks is the number of independently operable banks (paper: 8).
	Banks int
	// SubarraysPerBank is the number of subarrays per bank.
	SubarraysPerBank int
	// RowsPerSubarray is the number of regular data rows per subarray.
	RowsPerSubarray int
	// Columns is the row width in bits (bits processed per subarray op).
	Columns int
	// DualContactRows is the number of dual-contact-cell rows appended
	// after the data rows (ELP2IM: 1 or 2; Ambit: 2 inside the B-group).
	DualContactRows int
}

// Default returns the module configuration used in the paper's case
// studies: 8 banks, 512-row × 8K-column subarrays.
func Default() Config {
	return Config{
		Banks:            8,
		SubarraysPerBank: 16,
		RowsPerSubarray:  512,
		Columns:          8192,
		DualContactRows:  1,
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	switch {
	case c.Banks <= 0:
		return errors.New("dram: Banks must be positive")
	case c.SubarraysPerBank <= 0:
		return errors.New("dram: SubarraysPerBank must be positive")
	case c.RowsPerSubarray <= 0:
		return errors.New("dram: RowsPerSubarray must be positive")
	case c.Columns <= 0:
		return errors.New("dram: Columns must be positive")
	case c.DualContactRows < 0:
		return errors.New("dram: DualContactRows must be non-negative")
	}
	return nil
}

// TotalRows returns the number of rows per subarray including DCC rows.
func (c Config) TotalRows() int { return c.RowsPerSubarray + c.DualContactRows }

// State is the electrical state of a subarray's bitlines/SAs.
type State int

const (
	// StatePrecharged: bitline pair at Vdd/2, row buffer invalid.
	StatePrecharged State = iota
	// StateActivated: a row is open, row buffer holds its (restored) data.
	StateActivated
	// StatePseudoPrecharged: the SA supply shift has regulated the
	// bitlines; retained full-rail values await the next activate.
	StatePseudoPrecharged
)

// String returns the state name.
func (s State) String() string {
	switch s {
	case StatePrecharged:
		return "precharged"
	case StateActivated:
		return "activated"
	case StatePseudoPrecharged:
		return "pseudo-precharged"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// RetainMode selects which rail the pseudo-precharge retains.
type RetainMode int

const (
	// RetainOnes keeps '1' bitlines at Vdd (Gnd rail shifts to Vdd/2):
	// the next activate computes OR against the retained pattern.
	RetainOnes RetainMode = iota
	// RetainZeros keeps '0' bitlines at Gnd (Vdd rail shifts to Vdd/2):
	// the next activate computes AND.
	RetainZeros
)

// String returns the mode name.
func (m RetainMode) String() string {
	if m == RetainZeros {
		return "retain-zeros(AND)"
	}
	return "retain-ones(OR)"
}

// Subarray is one DRAM subarray: data rows, optional dual-contact rows, and
// a shared row of sense amplifiers (the row buffer).
type Subarray struct {
	cfg    Config
	rows   []*bitvec.Vector // TotalRows() rows of Columns bits
	buf    *bitvec.Vector   // row buffer (SA latches)
	state  State
	mode   RetainMode
	retain *bitvec.Vector // snapshot of buffer at pseudo-precharge time

	// Persistent per-command scratch rows, so Activate and ActivateTRA
	// never allocate on the hot path (the command-accurate model is the
	// fallback executor behind every fastpath miss and the whole
	// differential harness).
	scratchVal *bitvec.Vector // negated-read staging in Activate
	scratchRes *bitvec.Vector // charge-sharing result in Activate/ActivateTRA

	// Stats counters (functional-level cross-checks for the engines).
	Activations int // activate events
	Wordlines   int // total wordlines raised
}

// NewSubarray returns a zero-initialized subarray.
func NewSubarray(cfg Config) *Subarray {
	rows := make([]*bitvec.Vector, cfg.TotalRows())
	for i := range rows {
		rows[i] = bitvec.New(cfg.Columns)
	}
	return &Subarray{
		cfg:        cfg,
		rows:       rows,
		buf:        bitvec.New(cfg.Columns),
		retain:     bitvec.New(cfg.Columns),
		scratchVal: bitvec.New(cfg.Columns),
		scratchRes: bitvec.New(cfg.Columns),
	}
}

// Columns returns the subarray width in bits.
func (s *Subarray) Columns() int { return s.cfg.Columns }

// Rows returns the number of regular data rows.
func (s *Subarray) Rows() int { return s.cfg.RowsPerSubarray }

// State returns the current electrical state.
func (s *Subarray) State() State { return s.state }

// IsDCC reports whether row r is a dual-contact-cell row.
func (s *Subarray) IsDCC(r int) bool {
	return r >= s.cfg.RowsPerSubarray && r < s.cfg.TotalRows()
}

// DCCRow returns the row index of the i-th dual-contact row.
func (s *Subarray) DCCRow(i int) int {
	if i < 0 || i >= s.cfg.DualContactRows {
		panic(fmt.Sprintf("dram: DCC index %d out of range [0,%d)", i, s.cfg.DualContactRows))
	}
	return s.cfg.RowsPerSubarray + i
}

func (s *Subarray) checkRow(r int) {
	if r < 0 || r >= s.cfg.TotalRows() {
		panic(fmt.Sprintf("dram: row %d out of range [0,%d)", r, s.cfg.TotalRows()))
	}
}

// RowData returns the stored contents of row r without simulating an
// access (host-side backdoor for loading operands and checking results).
func (s *Subarray) RowData(r int) *bitvec.Vector {
	s.checkRow(r)
	return s.rows[r]
}

// LoadRow overwrites row r's cells with v (host-side backdoor).
func (s *Subarray) LoadRow(r int, v *bitvec.Vector) {
	s.checkRow(r)
	s.rows[r].CopyFrom(v)
}

// Buffer returns the row buffer contents. Valid only while activated.
func (s *Subarray) Buffer() *bitvec.Vector { return s.buf }

// Activate opens row r. Behaviour depends on the current state:
//
//   - precharged: normal access — the row is sensed into the buffer and
//     restored (destructive read + restore),
//   - activated: RowClone — the buffer is written into row r,
//   - pseudo-precharged: ELP2IM op — retained bitline values overwrite the
//     cells; erased (Vdd/2) bitlines sense normally. The row ends up with
//     retained OP row, which is also latched in the buffer.
//
// negated selects the complementary wordline of a dual-contact row and is
// only legal for DCC rows.
func (s *Subarray) Activate(r int, negated bool) error {
	s.checkRow(r)
	if negated && !s.IsDCC(r) {
		return fmt.Errorf("dram: row %d is not dual-contact; cannot activate negated wordline", r)
	}
	s.Activations++
	s.Wordlines++

	cell := s.rows[r]
	switch s.state {
	case StatePrecharged:
		if negated {
			s.buf.Not(cell)
		} else {
			s.buf.CopyFrom(cell)
		}
		// Restore is implicit: the cell already holds what was sensed.
	case StateActivated:
		// RowClone: buffer drives the bitlines; the opened cell is
		// overwritten with the buffer (or its complement through the
		// negated contact).
		if negated {
			cell.Not(s.buf)
		} else {
			cell.CopyFrom(s.buf)
		}
	case StatePseudoPrecharged:
		// ELP2IM in-place op. Where the bitline retained a full rail the
		// cell is overwritten; elsewhere the cell is sensed normally.
		val := cell
		if negated {
			val = s.scratchVal.Not(cell)
		}
		result := s.scratchRes
		switch s.mode {
		case RetainOnes: // retained '1' overwrites → OR
			result.Or(s.retain, val)
		case RetainZeros: // retained '0' overwrites → AND
			result.And(s.retain, val)
		}
		s.buf.CopyFrom(result)
		if negated {
			cell.Not(result)
		} else {
			cell.CopyFrom(result)
		}
	}
	s.state = StateActivated
	return nil
}

// ActivateTRA simultaneously opens three rows (Ambit). All bitline charge
// is shared; the SA resolves to the bitwise majority, which is restored
// into all three rows and the buffer. Only legal from the precharged state
// and only for non-DCC rows.
func (s *Subarray) ActivateTRA(r0, r1, r2 int) error {
	if s.state != StatePrecharged {
		return fmt.Errorf("dram: TRA requires precharged subarray, state is %v", s.state)
	}
	for _, r := range []int{r0, r1, r2} {
		s.checkRow(r)
	}
	if r0 == r1 || r1 == r2 || r0 == r2 {
		return errors.New("dram: TRA rows must be distinct")
	}
	s.Activations++
	s.Wordlines += 3
	maj := s.scratchRes.Majority(s.rows[r0], s.rows[r1], s.rows[r2])
	s.rows[r0].CopyFrom(maj)
	s.rows[r1].CopyFrom(maj)
	s.rows[r2].CopyFrom(maj)
	s.buf.CopyFrom(maj)
	s.state = StateActivated
	return nil
}

// PseudoPrecharge shifts one SA supply rail to Vdd/2 (then the split-EQ
// precharge equalizes the reference line). Retained full-rail values stay
// on the bitlines and will combine with the next activated row. Only legal
// while activated.
func (s *Subarray) PseudoPrecharge(mode RetainMode) error {
	if s.state != StateActivated {
		return fmt.Errorf("dram: pseudo-precharge requires an activated row, state is %v", s.state)
	}
	s.mode = mode
	s.retain.CopyFrom(s.buf)
	s.state = StatePseudoPrecharged
	return nil
}

// Precharge closes the subarray: bitlines equalized to Vdd/2.
func (s *Subarray) Precharge() {
	s.state = StatePrecharged
}

// ResetStats clears the activation counters.
func (s *Subarray) ResetStats() {
	s.Activations = 0
	s.Wordlines = 0
}

// Bank is a set of subarrays sharing I/O but operable one subarray at a
// time for PIM purposes.
type Bank struct {
	subs []*Subarray
}

// Subarray returns subarray i.
func (b *Bank) Subarray(i int) *Subarray {
	if i < 0 || i >= len(b.subs) {
		panic(fmt.Sprintf("dram: subarray %d out of range [0,%d)", i, len(b.subs)))
	}
	return b.subs[i]
}

// Subarrays returns the number of subarrays.
func (b *Bank) Subarrays() int { return len(b.subs) }

// Module is a full DRAM module.
type Module struct {
	cfg   Config
	banks []*Bank
}

// NewModule builds a module from cfg. It panics if cfg is invalid.
func NewModule(cfg Config) *Module {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	m := &Module{cfg: cfg, banks: make([]*Bank, cfg.Banks)}
	for b := range m.banks {
		bank := &Bank{subs: make([]*Subarray, cfg.SubarraysPerBank)}
		for i := range bank.subs {
			bank.subs[i] = NewSubarray(cfg)
		}
		m.banks[b] = bank
	}
	return m
}

// Config returns the module configuration.
func (m *Module) Config() Config { return m.cfg }

// Bank returns bank i.
func (m *Module) Bank(i int) *Bank {
	if i < 0 || i >= len(m.banks) {
		panic(fmt.Sprintf("dram: bank %d out of range [0,%d)", i, len(m.banks)))
	}
	return m.banks[i]
}

// Banks returns the number of banks.
func (m *Module) Banks() int { return len(m.banks) }
