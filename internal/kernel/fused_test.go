package kernel

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/bitvec"
	"repro/internal/dram"
	"repro/internal/elpim"
	"repro/internal/engine"
)

// softOp is the host golden model of one engine op over words.
func softOp(op engine.Op, a, b uint64) uint64 {
	switch op {
	case engine.OpNOT:
		return ^a
	case engine.OpCOPY:
		return a
	case engine.OpAND:
		return a & b
	case engine.OpOR:
		return a | b
	case engine.OpXOR:
		return a ^ b
	case engine.OpNAND:
		return ^(a & b)
	case engine.OpNOR:
		return ^(a | b)
	case engine.OpXNOR:
		return ^(a ^ b)
	default:
		panic(fmt.Sprintf("softOp: %v", op))
	}
}

// softSpec evaluates a fused spec in software over word-valued registers.
func softSpec(spec FusedSpec, inputs []uint64) uint64 {
	regs := make([]uint64, spec.Regs)
	copy(regs, inputs)
	for _, op := range spec.Ops {
		var b uint64
		if !op.Op.Unary() {
			b = regs[op.B]
		}
		regs[op.Dst] = softOp(op.Op, regs[op.A], b)
	}
	return regs[spec.Result]
}

// randomSpec builds a random well-formed register program over k inputs.
func randomSpec(rng *rand.Rand, k int) FusedSpec {
	nops := 1 + rng.Intn(8)
	spec := FusedSpec{K: k, Regs: k + nops}
	ops := []engine.Op{
		engine.OpNOT, engine.OpAND, engine.OpOR, engine.OpNAND,
		engine.OpNOR, engine.OpXOR, engine.OpXNOR,
	}
	for i := 0; i < nops; i++ {
		// Operands may be any input or any already-written scratch register.
		avail := k + i
		spec.Ops = append(spec.Ops, FusedOp{
			Op:  ops[rng.Intn(len(ops))],
			Dst: k + i,
			A:   rng.Intn(avail),
			B:   rng.Intn(avail),
		})
	}
	spec.Result = spec.Regs - 1
	return spec
}

// TestDeriveFusedMatchesSoftware derives random k-input specs from every
// engine and checks table and Apply against the software model.
func TestDeriveFusedMatchesSoftware(t *testing.T) {
	mod := dram.Default()
	for name, exec := range engines(t) {
		rng := rand.New(rand.NewSource(11))
		for k := 1; k <= MaxFusedInputs; k++ {
			for trial := 0; trial < 4; trial++ {
				spec := randomSpec(rng, k)
				f, err := DeriveFused(exec, spec, mod)
				if err != nil {
					t.Fatalf("%s k=%d: %v", name, k, err)
				}
				if f.K() != k {
					t.Fatalf("%s k=%d: K()=%d", name, k, f.K())
				}
				// Truth table against software evaluation of the packed
				// probe patterns.
				wantTab := softSpec(spec, varPat64[:k]) & tableMask(k)
				if f.Table() != wantTab {
					t.Fatalf("%s k=%d: table %#x, want %#x (spec %s)",
						name, k, f.Table(), wantTab, spec.key())
				}
				// Apply on random multi-word operands, including a ragged
				// non-multiple-of-block length.
				const words = fusedBlockWords + 17
				srcs := make([][]uint64, k)
				for j := range srcs {
					srcs[j] = make([]uint64, words)
					for w := range srcs[j] {
						srcs[j][w] = rng.Uint64()
					}
				}
				dst := make([]uint64, words)
				f.Apply(dst, srcs)
				in := make([]uint64, k)
				for w := 0; w < words; w++ {
					for j := range in {
						in[j] = srcs[j][w]
					}
					if want := softSpec(spec, in); dst[w] != want {
						t.Fatalf("%s k=%d word %d: got %016x want %016x (%v)",
							name, k, w, dst[w], want, f)
					}
				}
			}
		}
	}
}

// TestDeriveFusedDegenerate covers functions that collapse below a full
// program: constants, a bare input, and a complemented input.
func TestDeriveFusedDegenerate(t *testing.T) {
	exec := elpim.MustNew(elpim.DefaultConfig())
	mod := dram.Default()
	cases := []struct {
		name string
		spec FusedSpec
		tab  uint64
	}{
		{
			name: "const0", // a ^ a
			spec: FusedSpec{K: 1, Regs: 2, Result: 1,
				Ops: []FusedOp{{Op: engine.OpXOR, Dst: 1, A: 0, B: 0}}},
			tab: 0b00,
		},
		{
			name: "const1", // a xnor a
			spec: FusedSpec{K: 1, Regs: 2, Result: 1,
				Ops: []FusedOp{{Op: engine.OpXNOR, Dst: 1, A: 0, B: 0}}},
			tab: 0b11,
		},
		{
			name: "identity", // (a & b) | a = a
			spec: FusedSpec{K: 2, Regs: 4, Result: 3,
				Ops: []FusedOp{
					{Op: engine.OpAND, Dst: 2, A: 0, B: 1},
					{Op: engine.OpOR, Dst: 3, A: 2, B: 0},
				}},
			tab: 0b1010,
		},
		{
			name: "not-b", // ~~~b
			spec: FusedSpec{K: 2, Regs: 3, Result: 2,
				Ops: []FusedOp{
					{Op: engine.OpNOT, Dst: 2, A: 1},
					{Op: engine.OpNOT, Dst: 2, A: 2},
					{Op: engine.OpNOT, Dst: 2, A: 2},
				}},
			tab: 0b0011,
		},
	}
	for _, tc := range cases {
		f, err := DeriveFused(exec, tc.spec, mod)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if f.Table() != tc.tab {
			t.Fatalf("%s: table %#b, want %#b", tc.name, f.Table(), tc.tab)
		}
		srcs := make([][]uint64, tc.spec.K)
		for j := range srcs {
			srcs[j] = []uint64{varPat64[j], ^varPat64[j]}
		}
		dst := make([]uint64, 2)
		f.Apply(dst, srcs)
		in := make([]uint64, tc.spec.K)
		for w := range dst {
			for j := range in {
				in[j] = srcs[j][w]
			}
			if want := softSpec(tc.spec, in); dst[w] != want {
				t.Fatalf("%s word %d: got %016x want %016x", tc.name, w, dst[w], want)
			}
		}
	}
}

// TestDeriveFusedRejectsBadSpecs pins the validation errors.
func TestDeriveFusedRejectsBadSpecs(t *testing.T) {
	exec := elpim.MustNew(elpim.DefaultConfig())
	mod := dram.Default()
	bad := []FusedSpec{
		{K: 0, Regs: 1, Result: 0}, // no inputs
		{K: 7, Regs: 8, Result: 0}, // too many inputs
		{K: 2, Regs: 1, Result: 0}, // fewer regs than inputs
		{K: 2, Regs: 3, Result: 3}, // result out of range
		{K: 2, Regs: 3, Result: 2, Ops: []FusedOp{{Op: engine.OpAND, Dst: 0, A: 0, B: 1}}},  // writes an input
		{K: 2, Regs: 3, Result: 2, Ops: []FusedOp{{Op: engine.OpAND, Dst: 2, A: 5, B: 1}}},  // reads out of range
		{K: 2, Regs: 3, Result: 2, Ops: []FusedOp{{Op: engine.OpAND, Dst: 2, A: 0, B: -1}}}, // bad binary B
	}
	for i, spec := range bad {
		if _, err := DeriveFused(exec, spec, mod); err == nil {
			t.Fatalf("spec %d (%s): expected error", i, spec.key())
		}
	}
	if _, err := DeriveFused(nil, FusedSpec{K: 1, Regs: 1}, mod); err == nil {
		t.Fatal("nil executor: expected error")
	}
}

// impureExec returns position-dependent garbage: derivation must detect
// the aperiodic probe and refuse to compile a kernel.
type impureExec struct{}

func (impureExec) Execute(sub *dram.Subarray, op engine.Op, dst, a, b int) error {
	w := make([]uint64, sub.Columns()/64)
	w[0] = 0x0123_4567_89AB_CDEF // aperiodic for every k
	sub.LoadRow(dst, bitvec.FromWords(w, sub.Columns()))
	return nil
}

// TestDeriveFusedRejectsImpure pins the aperiodicity check.
func TestDeriveFusedRejectsImpure(t *testing.T) {
	spec := FusedSpec{K: 2, Regs: 3, Result: 2,
		Ops: []FusedOp{{Op: engine.OpAND, Dst: 2, A: 0, B: 1}}}
	_, err := DeriveFused(impureExec{}, spec, dram.Default())
	if err == nil || !strings.Contains(err.Error(), "not a pure bitwise function") {
		t.Fatalf("expected aperiodicity error, got %v", err)
	}
}

// TestFusedSetCaches pins the derive-once and error-caching behaviour.
func TestFusedSetCaches(t *testing.T) {
	set := NewFusedSet(elpim.MustNew(elpim.DefaultConfig()), dram.Default())
	spec := FusedSpec{K: 3, Regs: 5, Result: 4, Ops: []FusedOp{
		{Op: engine.OpAND, Dst: 3, A: 0, B: 1},
		{Op: engine.OpOR, Dst: 4, A: 3, B: 2},
	}}
	f1, err := set.Fused(spec)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := set.Fused(spec)
	if err != nil {
		t.Fatal(err)
	}
	if f1 != f2 {
		t.Fatal("second lookup did not hit the cache")
	}
	bad := FusedSpec{K: 2, Regs: 1, Result: 0}
	_, err1 := set.Fused(bad)
	_, err2 := set.Fused(bad)
	if err1 == nil || err2 == nil || err1.Error() != err2.Error() {
		t.Fatalf("error not cached stably: %v vs %v", err1, err2)
	}
}

// TestFusedApplyConcurrent exercises one kernel from many goroutines
// under -race: Apply must not share mutable state across calls.
func TestFusedApplyConcurrent(t *testing.T) {
	exec := elpim.MustNew(elpim.DefaultConfig())
	spec := FusedSpec{K: 3, Regs: 5, Result: 4, Ops: []FusedOp{
		{Op: engine.OpXOR, Dst: 3, A: 0, B: 1},
		{Op: engine.OpAND, Dst: 4, A: 3, B: 2},
	}}
	f, err := DeriveFused(exec, spec, dram.Default())
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func(seed int64) {
			rng := rand.New(rand.NewSource(seed))
			const words = 200
			srcs := [][]uint64{make([]uint64, words), make([]uint64, words), make([]uint64, words)}
			for j := range srcs {
				for w := range srcs[j] {
					srcs[j][w] = rng.Uint64()
				}
			}
			dst := make([]uint64, words)
			for iter := 0; iter < 50; iter++ {
				f.Apply(dst, srcs)
				for w := range dst {
					if want := (srcs[0][w] ^ srcs[1][w]) & srcs[2][w]; dst[w] != want {
						done <- fmt.Errorf("word %d: got %016x want %016x", w, dst[w], want)
						return
					}
				}
			}
			done <- nil
		}(int64(g))
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

// TestFusedPacking pins the pass-packing contract: balanced trees and
// operand chains of three gates each collapse into one generated pass
// (via the quad-tree and quad-chain shapes, the latter exercising the
// operand-swap table transpose), and packing never runs more passes
// than the program has gates.
func TestFusedPacking(t *testing.T) {
	exec := elpim.MustNew(elpim.DefaultConfig())
	mod := dram.Default()

	// (a & b) | (c & d): three gates, one quad-tree pass.
	tree := FusedSpec{K: 4, Regs: 7, Result: 6, Ops: []FusedOp{
		{Op: engine.OpAND, Dst: 4, A: 0, B: 1},
		{Op: engine.OpAND, Dst: 5, A: 2, B: 3},
		{Op: engine.OpOR, Dst: 6, A: 4, B: 5},
	}}
	// d ^ (c & (a | b)): three gates, one quad-chain pass; the inner
	// values sit on second operands, so packing must re-root them by
	// transposing the consumers' tables.
	chain := FusedSpec{K: 4, Regs: 7, Result: 6, Ops: []FusedOp{
		{Op: engine.OpOR, Dst: 4, A: 0, B: 1},
		{Op: engine.OpAND, Dst: 5, A: 2, B: 4},
		{Op: engine.OpXOR, Dst: 6, A: 3, B: 5},
	}}
	for name, spec := range map[string]FusedSpec{"tree": tree, "chain": chain} {
		f, err := DeriveFused(exec, spec, mod)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if f.Ops() != 3 || f.Passes() != 1 {
			t.Fatalf("%s packs to ops=%d passes=%d, want 3 gates in 1 pass (%v)",
				name, f.Ops(), f.Passes(), f)
		}
	}

	// Random programs: packing must never exceed one pass per gate.
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 32; trial++ {
		spec := randomSpec(rng, 1+rng.Intn(MaxFusedInputs))
		f, err := DeriveFused(exec, spec, mod)
		if err != nil {
			t.Fatalf("%s: %v", spec.key(), err)
		}
		if f.Passes() > f.Ops() {
			t.Fatalf("spec %s: passes=%d > ops=%d", spec.key(), f.Passes(), f.Ops())
		}
	}
}
