// Package kernel compiles the functional hot loop of the accelerator:
// word-level boolean kernels derived from the command-accurate device
// model itself.
//
// Every logic operation the engines implement is, at the row level, a
// pure bitwise boolean function — a 4-entry truth table for binary ops,
// 2-entry for unary ones. Rather than hard-coding those tables (and
// risking drift from the device model as sequences evolve), Derive
// probes the real engine once on a tiny scratch subarray: it loads the
// input combinations into operand rows, executes the engine's actual
// command sequence through the dram model, reads the truth table back
// out of the destination row, and compiles it to a tight
// func(dst, a, b []uint64) over whole words. A kernel therefore cannot
// disagree with the engine that produced it — if the engine's sequences
// change, re-derivation picks the change up automatically, and the
// post-derivation verification pass rejects any operation whose
// behaviour is not a pure per-bit function of its operands.
//
// The facade uses these kernels as a compiled fast path for word-aligned
// configurations, falling back to command-level execution whenever the
// command stream itself is observable (fault injection, detection
// wrappers) or the geometry is not word-aligned.
package kernel

import (
	"fmt"
	"sync"

	"repro/internal/bitvec"
	"repro/internal/dram"
	"repro/internal/engine"
)

// Executor is the functional command-level surface probed during
// derivation (implemented by every engine).
type Executor interface {
	Execute(sub *dram.Subarray, op engine.Op, dst, a, b int) error
}

// Probe geometry: the scratch subarray every derivation runs on. 16 data
// rows satisfy the row-hungriest engine (Ambit's 6-row B-group plus the
// three operand rows, DRISA's 4 scratch rows); one 64-bit word of columns
// holds the truth-table probe and the verification patterns.
const (
	probeRows = 16
	probeCols = 64
)

// Verification patterns: after compiling the truth table, the kernel and
// the engine are run side by side on these words; any disagreement means
// the operation is not a pure per-bit boolean function and must not be
// compiled.
const (
	verifyA = uint64(0xA5F00FC3_5A3C96E1)
	verifyB = uint64(0x0FF0C3A5_E1963CA5)
)

// probe rows inside the scratch subarray (mirroring the facade layout).
const (
	probeRowA = 0
	probeRowB = 1
	probeRowC = 2
)

// Kernel is one operation's compiled word-level implementation.
type Kernel struct {
	op    engine.Op
	table uint8
	unary bool
	fn    func(dst, a, b []uint64)
}

// Op returns the operation the kernel implements.
func (k *Kernel) Op() engine.Op { return k.op }

// Unary reports whether the kernel ignores its second operand.
func (k *Kernel) Unary() bool { return k.unary }

// Table returns the derived truth table: for binary ops bit i holds
// f(a=i&1, b=i>>1&1); for unary ops bit i holds f(a=i).
func (k *Kernel) Table() uint8 { return k.table }

// String renders the kernel for diagnostics.
func (k *Kernel) String() string {
	if k.unary {
		return fmt.Sprintf("kernel(%v, table=%02b)", k.op, k.table)
	}
	return fmt.Sprintf("kernel(%v, table=%04b)", k.op, k.table)
}

// Apply computes dst = f(a, b) word-wise over len(dst) words. The three
// slices must share a length (b is ignored and may be nil for unary
// kernels); dst may alias a or b. Tail bits beyond the caller's logical
// vector length are written like any others — callers that maintain a
// canonical form must re-mask the final word.
func (k *Kernel) Apply(dst, a, b []uint64) { k.fn(dst, a, b) }

// Derive probes exec's implementation of op on a scratch subarray and
// compiles the observed truth table. module supplies the dual-contact
// geometry the engine was configured against; everything else about the
// probe subarray is fixed and tiny. Derivation fails — and the caller
// must stay on the command-level path — when the engine rejects the
// operation or behaves non-uniformly across bit positions.
func Derive(exec Executor, op engine.Op, module dram.Config) (*Kernel, error) {
	if exec == nil {
		return nil, fmt.Errorf("kernel: nil executor")
	}
	dcc := module.DualContactRows
	if dcc < 2 {
		// Ambit's NOT path and the two-buffer ELP2IM sequences need up to
		// two dual-contact rows; granting the probe both is always legal.
		dcc = 2
	}
	sub := dram.NewSubarray(dram.Config{
		Banks:            1,
		SubarraysPerBank: 1,
		RowsPerSubarray:  probeRows,
		Columns:          probeCols,
		DualContactRows:  dcc,
	})

	table, err := probeTable(exec, op, sub)
	if err != nil {
		return nil, err
	}
	k := &Kernel{op: op, table: table, unary: op.Unary()}
	if k.unary {
		k.fn = unaryFn(table)
	} else {
		k.fn = binaryFn(table)
	}
	if err := verify(exec, k, sub); err != nil {
		return nil, err
	}
	return k, nil
}

// probeTable executes op once over all input combinations packed into the
// low bits of the operand rows and reads the truth table back.
func probeTable(exec Executor, op engine.Op, sub *dram.Subarray) (uint8, error) {
	combos := 4
	if op.Unary() {
		combos = 2
	}
	a := bitvec.New(probeCols)
	b := bitvec.New(probeCols)
	for i := 0; i < combos; i++ {
		a.SetBit(i, i&1 == 1)
		b.SetBit(i, i>>1&1 == 1)
	}
	if err := runProbe(exec, op, sub, a, b); err != nil {
		return 0, fmt.Errorf("kernel: probing %v: %w", op, err)
	}
	var table uint8
	out := sub.RowData(probeRowC)
	for i := 0; i < combos; i++ {
		if out.Bit(i) {
			table |= 1 << uint(i)
		}
	}
	return table, nil
}

// runProbe stages the operand rows and executes op into the probe
// destination row, leaving the subarray precharged for the next probe.
func runProbe(exec Executor, op engine.Op, sub *dram.Subarray, a, b *bitvec.Vector) error {
	sub.Precharge()
	sub.LoadRow(probeRowA, a)
	sub.LoadRow(probeRowB, b)
	return exec.Execute(sub, op, probeRowC, probeRowA, probeRowB)
}

// verify re-runs the engine on full-word patterns and cross-checks the
// compiled kernel, rejecting operations whose device-model behaviour is
// not the derived per-bit function (e.g. anything position-dependent).
func verify(exec Executor, k *Kernel, sub *dram.Subarray) error {
	a := bitvec.FromWords([]uint64{verifyA}, probeCols)
	b := bitvec.FromWords([]uint64{verifyB}, probeCols)
	if err := runProbe(exec, k.op, sub, a, b); err != nil {
		return fmt.Errorf("kernel: verifying %v: %w", k.op, err)
	}
	var got, want [1]uint64
	k.Apply(want[:], []uint64{verifyA}, []uint64{verifyB})
	got[0] = sub.RowData(probeRowC).Words()[0]
	if got != want {
		return fmt.Errorf("kernel: %v is not a pure bitwise function: device %016x, compiled table %016x",
			k.op, got[0], want[0])
	}
	return nil
}

// binaryFn returns the word loop of one of the 16 binary boolean
// functions, indexed by its truth table (bit i = f(a=i&1, b=i>>1&1)).
// Each case is a single-pass loop the compiler vectorizes well; none
// allocates.
func binaryFn(table uint8) func(dst, a, b []uint64) {
	switch table & 0xF {
	case 0b0000:
		return func(dst, a, b []uint64) {
			for i := range dst {
				dst[i] = 0
			}
		}
	case 0b0001: // NOR
		return func(dst, a, b []uint64) {
			for i := range dst {
				dst[i] = ^(a[i] | b[i])
			}
		}
	case 0b0010: // a AND NOT b
		return func(dst, a, b []uint64) {
			for i := range dst {
				dst[i] = a[i] &^ b[i]
			}
		}
	case 0b0011: // NOT b
		return func(dst, a, b []uint64) {
			for i := range dst {
				dst[i] = ^b[i]
			}
		}
	case 0b0100: // b AND NOT a
		return func(dst, a, b []uint64) {
			for i := range dst {
				dst[i] = b[i] &^ a[i]
			}
		}
	case 0b0101: // NOT a
		return func(dst, a, b []uint64) {
			for i := range dst {
				dst[i] = ^a[i]
			}
		}
	case 0b0110: // XOR
		return func(dst, a, b []uint64) {
			for i := range dst {
				dst[i] = a[i] ^ b[i]
			}
		}
	case 0b0111: // NAND
		return func(dst, a, b []uint64) {
			for i := range dst {
				dst[i] = ^(a[i] & b[i])
			}
		}
	case 0b1000: // AND
		return func(dst, a, b []uint64) {
			for i := range dst {
				dst[i] = a[i] & b[i]
			}
		}
	case 0b1001: // XNOR
		return func(dst, a, b []uint64) {
			for i := range dst {
				dst[i] = ^(a[i] ^ b[i])
			}
		}
	case 0b1010: // a
		return func(dst, a, b []uint64) {
			copy(dst, a)
		}
	case 0b1011: // a OR NOT b
		return func(dst, a, b []uint64) {
			for i := range dst {
				dst[i] = a[i] | ^b[i]
			}
		}
	case 0b1100: // b
		return func(dst, a, b []uint64) {
			copy(dst, b)
		}
	case 0b1101: // b OR NOT a
		return func(dst, a, b []uint64) {
			for i := range dst {
				dst[i] = b[i] | ^a[i]
			}
		}
	case 0b1110: // OR
		return func(dst, a, b []uint64) {
			for i := range dst {
				dst[i] = a[i] | b[i]
			}
		}
	default: // 0b1111
		return func(dst, a, b []uint64) {
			for i := range dst {
				dst[i] = ^uint64(0)
			}
		}
	}
}

// unaryFn returns the word loop of one of the 4 unary boolean functions,
// indexed by its truth table (bit i = f(a=i)).
func unaryFn(table uint8) func(dst, a, b []uint64) {
	switch table & 0b11 {
	case 0b00:
		return func(dst, a, b []uint64) {
			for i := range dst {
				dst[i] = 0
			}
		}
	case 0b01: // NOT
		return func(dst, a, b []uint64) {
			for i := range dst {
				dst[i] = ^a[i]
			}
		}
	case 0b10: // COPY
		return func(dst, a, b []uint64) {
			copy(dst, a)
		}
	default: // 0b11
		return func(dst, a, b []uint64) {
			for i := range dst {
				dst[i] = ^uint64(0)
			}
		}
	}
}

// Set lazily derives and memoizes the kernels of one executor. A Set is
// safe for concurrent use; each operation is probed at most once, and a
// derivation failure (unsupported op, non-bitwise behaviour) is cached so
// the caller's fallback decision stays O(1) too.
type Set struct {
	exec   Executor
	module dram.Config

	mu      sync.Mutex
	kernels [engine.OpCOPY + 1]*Kernel
	errs    [engine.OpCOPY + 1]error
	tried   [engine.OpCOPY + 1]bool
}

// NewSet returns a kernel cache probing exec under module's dual-contact
// geometry.
func NewSet(exec Executor, module dram.Config) *Set {
	return &Set{exec: exec, module: module}
}

// Kernel returns op's compiled kernel, deriving it on first use. The
// error (nil or not) is stable across calls.
func (s *Set) Kernel(op engine.Op) (*Kernel, error) {
	if op < 0 || int(op) >= len(s.kernels) {
		return nil, fmt.Errorf("kernel: unknown op %v", op)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.tried[op] {
		s.tried[op] = true
		s.kernels[op], s.errs[op] = Derive(s.exec, op, s.module)
	}
	return s.kernels[op], s.errs[op]
}
