package kernel

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/bitvec"
	"repro/internal/dram"
	"repro/internal/engine"
)

// MaxFusedInputs is the largest input arity a fused kernel supports. Six
// inputs give a 64-entry truth table — exactly one 64-bit probe word —
// so deriving a k-input kernel costs a single engine run regardless of
// how many gates it fuses.
const MaxFusedInputs = 6

// FusedOp is one engine operation of a fused-kernel specification, in
// register form: Dst = Op(A, B). Registers 0..K-1 are the kernel inputs
// (read-only; Dst must be a scratch register ≥ K); B is ignored for
// unary ops.
type FusedOp struct {
	Op   engine.Op
	Dst  int
	A, B int
}

// FusedSpec describes a k-input boolean function as the engine command
// sequence that computes it: a register program over K input registers
// and Regs-K scratch registers, leaving the function value in Result.
// The plan compiler (internal/plan) produces one spec per fused cluster;
// DeriveFused runs the spec's real command sequence on the device model
// to learn — never assume — its truth table.
type FusedSpec struct {
	// K is the input arity (1..MaxFusedInputs).
	K int
	// Regs is the total register count, inputs included.
	Regs int
	// Ops is the command sequence in execution order.
	Ops []FusedOp
	// Result is the register holding the function value after Ops.
	Result int
}

// validate checks the register shape of a spec.
func (sp *FusedSpec) validate() error {
	if sp.K < 1 || sp.K > MaxFusedInputs {
		return fmt.Errorf("kernel: fused spec has %d inputs, want 1..%d", sp.K, MaxFusedInputs)
	}
	if sp.Regs < sp.K {
		return fmt.Errorf("kernel: fused spec has %d registers for %d inputs", sp.Regs, sp.K)
	}
	if sp.Result < 0 || sp.Result >= sp.Regs {
		return fmt.Errorf("kernel: fused spec result register %d out of range", sp.Result)
	}
	for i, op := range sp.Ops {
		if op.Dst < sp.K || op.Dst >= sp.Regs {
			return fmt.Errorf("kernel: fused spec op %d writes register %d (inputs are read-only)", i, op.Dst)
		}
		if op.A < 0 || op.A >= sp.Regs {
			return fmt.Errorf("kernel: fused spec op %d reads register %d out of range", i, op.A)
		}
		if !op.Op.Unary() && (op.B < 0 || op.B >= sp.Regs) {
			return fmt.Errorf("kernel: fused spec op %d reads register %d out of range", i, op.B)
		}
	}
	return nil
}

// key returns the spec's canonical cache key.
func (sp *FusedSpec) key() string {
	var b strings.Builder
	fmt.Fprintf(&b, "k%d r%d res%d", sp.K, sp.Regs, sp.Result)
	for _, op := range sp.Ops {
		fmt.Fprintf(&b, ";%d:%d=%d,%d", op.Op, op.Dst, op.A, op.B)
	}
	return b.String()
}

// Execution geometry of a fused kernel's word loop. Packing keeps most
// intermediates in machine registers, so the scratch file carries only
// inter-pass values: blocks of 1024 words (8 KiB per register) amortize
// the per-block view setup and indirect pass calls down to noise while
// the few live scratch rows stay cache-resident. 32 scratch registers
// bound the packed program's live values (a program needing more fails
// derivation and the caller falls back to node-at-a-time kernels).
const (
	fusedBlockWords = 1024
	fusedMaxScratch = 32
)

// fusedScratch pools Apply's per-call register file (16 KiB): getting a
// used file skips the zeroing a fresh stack array would pay on every
// call, which dominates when Apply runs once per stripe.
var fusedScratch = sync.Pool{
	New: func() any { return new([fusedMaxScratch][fusedBlockWords]uint64) },
}

// result-kind markers for Fused.resConst.
const (
	resOperand = -1 // result is f.res (an input or scratch operand)
	resZero    = 0
	resOne     = 1
)

// fusedInstr is one synthesized word-level operation: a 4-bit binary
// truth table applied over whole words. Operand encoding: 0..k-1 are the
// kernel inputs, k+r is scratch register r. The instruction list is the
// kernel's gate-level IR; execution packs it into multi-gate passes
// (see pack and fusedgen.go).
type fusedInstr struct {
	tab       uint8
	dst, a, b uint8
}

//go:generate go run ../../scripts/genfused -o fusedgen.go

// fusedPass is one generated word loop from the pass library
// (fusedgen.go): a straight-line evaluation of up to three composed
// gates whose intermediate values live in machine registers. Trailing
// operands a pass does not use are ignored (callers pass any valid
// view).
type fusedPass func(dst, a, b, c, d []uint64)

// fusedMacro is one packed execution pass: a pass-library loop over up
// to four operands. Operand encoding matches fusedInstr (0..k-1 inputs,
// k+r scratch); unused operand slots hold 0, which is always a valid
// view.
type fusedMacro struct {
	fn              fusedPass
	dst, a, b, c, d uint8
}

// Fused is a compiled k-input word-level kernel: the whole cluster of
// gates collapses into one pass over the operand words. Like the 2-input
// Kernel it is self-derived — DeriveFused probes the engine's real
// command sequence and compiles the observed truth table — so a fused
// kernel cannot disagree with the command-accurate execution of its
// spec. Apply is safe for concurrent use.
type Fused struct {
	k        int
	table    uint64
	code     []fusedInstr // gate-level IR, one instr per gate
	macros   []fusedMacro // packed execution passes (see pack)
	nscratch int
	res      uint8
	resConst int8
}

// K returns the kernel's input arity.
func (f *Fused) K() int { return f.k }

// Table returns the derived truth table: bit i holds the function value
// where input j = (i>>j)&1, for i < 2^K.
func (f *Fused) Table() uint64 { return f.table }

// Ops returns the gate count of the compiled program — the cluster's
// logical cost, to compare against one kernel per node on the
// node-at-a-time path.
func (f *Fused) Ops() int { return len(f.code) }

// Passes returns the number of packed word loops Apply runs per block.
// Packing fuses up to three gates per pass, so Passes ≤ Ops; on a
// memory-port-bound machine the pass count, not the gate count, is
// what Apply's runtime scales with.
func (f *Fused) Passes() int { return len(f.macros) }

// String renders the kernel for diagnostics.
func (f *Fused) String() string {
	return fmt.Sprintf("fused(k=%d, table=%#x, ops=%d, passes=%d)", f.k, f.table, len(f.code), len(f.macros))
}

// Apply computes dst = f(srcs...) word-wise over len(dst) words. srcs
// must hold K slices of at least len(dst) words; dst must not overlap
// any source (sources are re-read throughout the fused program). Tail
// bits beyond the caller's logical vector length are written like any
// others — callers that maintain a canonical form must re-mask.
func (f *Fused) Apply(dst []uint64, srcs [][]uint64) {
	if f.resConst != resOperand {
		w := uint64(0)
		if f.resConst == resOne {
			w = ^uint64(0)
		}
		for i := range dst {
			dst[i] = w
		}
		return
	}
	if len(f.code) == 0 {
		// The function collapsed to one of its inputs.
		copy(dst, srcs[f.res][:len(dst)])
		return
	}
	// Block-wise evaluation: a pooled scratch register file, with every
	// operand resolved once per block into a view slice. The result
	// register's view aliases dst directly, so the final value needs no
	// copy-out. Pooled files are reused without zeroing — compiled
	// programs define every scratch register before reading it.
	file := fusedScratch.Get().(*[fusedMaxScratch][fusedBlockWords]uint64)
	defer fusedScratch.Put(file)
	var view [MaxFusedInputs + fusedMaxScratch][]uint64
	n := len(dst)
	for base := 0; base < n; base += fusedBlockWords {
		m := n - base
		if m > fusedBlockWords {
			m = fusedBlockWords
		}
		for j := 0; j < f.k; j++ {
			view[j] = srcs[j][base : base+m]
		}
		for r := 0; r < f.nscratch; r++ {
			view[f.k+r] = file[r][:m]
		}
		view[f.res] = dst[base : base+m]
		for i := range f.macros {
			in := &f.macros[i]
			in.fn(view[in.dst], view[in.a], view[in.b], view[in.c], view[in.d])
		}
	}
}

// pack tiles the kernel's gate-level program into multi-gate passes
// from the generated library (fusedgen.go), so each pass streams its
// operands once and keeps intermediate gate values in machine
// registers. Apply's runtime scales with the pass count: on a
// memory-port-bound word loop a three-gate pass costs the same as a
// one-gate pass, so packing is where fusion's speedup over
// node-at-a-time kernels actually comes from.
//
// The pass rebuilds SSA form from the register program, counts uses
// over the values reachable from the result, and munches bottom-up: a
// gate whose operands are both single-use gate values becomes a
// balanced-tree pass q(f1(a,b), f2(c,d)); one fusable operand extends
// into a chain pass h(g(f(a,b),c),d) when its own first operand is
// fusable too, else a two-gate pass g(f(a,b),c); anything else is a
// one-gate pass. A fusable value on the second operand is re-rooted to
// the first by transposing the consumer's truth table (bit 1 ↔ bit 2).
// Multi-use values are materialized exactly once, so the packed program
// never duplicates gate work. A fresh liveness-scan register allocation
// over the passes bounds scratch at fusedMaxScratch.
func (f *Fused) pack() error {
	if f.resConst != resOperand || len(f.code) == 0 {
		return nil
	}
	// Rebuild SSA: the register allocator reuses registers, so resolve
	// each operand to the value its register holds at that point.
	type val struct {
		tab  uint8
		a, b int
	}
	vals := make([]val, 0, len(f.code))
	regVal := make([]int, f.nscratch)
	resolve := func(op uint8) int {
		if int(op) < f.k {
			return int(op)
		}
		return regVal[int(op)-f.k]
	}
	for _, in := range f.code {
		v := val{tab: in.tab, a: resolve(in.a), b: resolve(in.b)}
		vals = append(vals, v)
		regVal[int(in.dst)-f.k] = f.k + len(vals) - 1
	}
	root := resolve(f.res)

	// Use counts over values reachable from the result. An operand read
	// twice by one gate counts twice: fusing it would duplicate its work,
	// so only uses == 1 values are candidates.
	uses := make([]int, len(vals))
	var markUses func(op int)
	markUses = func(op int) {
		if op < f.k {
			return
		}
		i := op - f.k
		uses[i]++
		if uses[i] > 1 {
			return
		}
		markUses(vals[i].a)
		markUses(vals[i].b)
	}
	markUses(root)

	// swap transposes a table's operands (bit 1 ↔ bit 2), matching the
	// canonicalization in synState.emit.
	swap := func(tab uint8) uint8 { return tab&0b1001 | tab&0b0010<<1 | tab&0b0100>>1 }
	fusable := func(op int) bool { return op >= f.k && uses[op-f.k] == 1 }

	// Tile bottom-up from the result. Operand space for macroIR: inputs
	// 0..k-1, then k+i for pass i's output; -1 marks an unused slot.
	type macroIR struct {
		fn  fusedPass
		ops [4]int
	}
	var macros []macroIR
	memo := make([]int, len(vals))
	for i := range memo {
		memo[i] = -1
	}
	var emit func(op int) int
	emit = func(op int) int {
		if op < f.k {
			return op
		}
		if m := memo[op-f.k]; m >= 0 {
			return m
		}
		v := vals[op-f.k]
		tab, a, b := v.tab, v.a, v.b
		if !fusable(a) && fusable(b) {
			tab, a, b = swap(tab), b, a
		}
		var m macroIR
		switch {
		case fusable(a) && fusable(b) && a != b:
			A, B := vals[a-f.k], vals[b-f.k]
			m.fn = quadTreeFns[int(tab)<<8|int(A.tab)<<4|int(B.tab)]
			m.ops = [4]int{emit(A.a), emit(A.b), emit(B.a), emit(B.b)}
		case fusable(a):
			A := vals[a-f.k]
			gtab, ga, gb := A.tab, A.a, A.b
			if !fusable(ga) && fusable(gb) {
				gtab, ga, gb = swap(gtab), gb, ga
			}
			if fusable(ga) && ga != gb {
				G := vals[ga-f.k]
				m.fn = quadChainFns[int(tab)<<8|int(gtab)<<4|int(G.tab)]
				m.ops = [4]int{emit(G.a), emit(G.b), emit(gb), emit(b)}
			} else {
				m.fn = ternFns[int(tab)<<4|int(A.tab)]
				m.ops = [4]int{emit(A.a), emit(A.b), emit(b), -1}
			}
		default:
			m.fn = ternFns[0b1010<<4|int(tab)]
			m.ops = [4]int{emit(a), emit(b), -1, -1}
		}
		macros = append(macros, m)
		enc := f.k + len(macros) - 1
		memo[op-f.k] = enc
		return enc
	}
	emit(root)

	// Liveness-scan register allocation over the passes; the result pass
	// lives to the end so its view can alias dst.
	last := make([]int, len(macros))
	for i, m := range macros {
		for _, op := range m.ops {
			if op >= f.k {
				last[op-f.k] = i
			}
		}
	}
	last[len(macros)-1] = len(macros)

	reg := make([]int, len(macros))
	nscratch := 0
	var free []int
	packed := make([]fusedMacro, len(macros))
	for i, m := range macros {
		var enc [4]uint8
		for j, op := range m.ops {
			switch {
			case op < 0:
				enc[j] = 0 // unused slot: any valid view
			case op < f.k:
				enc[j] = uint8(op)
			default:
				enc[j] = uint8(f.k + reg[op-f.k])
			}
		}
		// Free dying operands — each value once, however many slots it
		// fills — so the destination may reuse a dying operand's register.
		for j, op := range m.ops {
			if op < f.k || last[op-f.k] != i {
				continue
			}
			dup := false
			for _, p := range m.ops[:j] {
				if p == op {
					dup = true
				}
			}
			if !dup {
				free = append(free, reg[op-f.k])
			}
		}
		var r int
		if n := len(free); n > 0 {
			r = free[n-1]
			free = free[:n-1]
		} else {
			r = nscratch
			nscratch++
		}
		reg[i] = r
		packed[i] = fusedMacro{fn: m.fn, dst: uint8(f.k + r), a: enc[0], b: enc[1], c: enc[2], d: enc[3]}
	}
	if nscratch > fusedMaxScratch {
		return fmt.Errorf("kernel: fused packing needs %d scratch registers, max %d", nscratch, fusedMaxScratch)
	}
	f.macros = packed
	f.nscratch = nscratch
	f.res = uint8(f.k + reg[len(macros)-1])
	return nil
}

// varPat64 holds the packed probe pattern of input j: bit i = (i>>j)&1.
// The patterns are periodic in 2^K for any K ≤ 6, so one 64-bit word
// probes every input combination at once (with combinations repeating
// when K < 6 — free redundancy the derivation cross-checks).
var varPat64 = [MaxFusedInputs]uint64{
	0xAAAA_AAAA_AAAA_AAAA,
	0xCCCC_CCCC_CCCC_CCCC,
	0xF0F0_F0F0_F0F0_F0F0,
	0xFF00_FF00_FF00_FF00,
	0xFFFF_0000_FFFF_0000,
	0xFFFF_FFFF_0000_0000,
}

// ProbePattern returns input j's packed probe pattern: bit i = (i>>j)&1.
// Evaluating a k-input function over the first k patterns as word values
// yields its truth table in the low 2^k bits — the software-side mirror
// of what DeriveFused reads back from the device.
func ProbePattern(j int) uint64 { return varPat64[j] }

// fusedVerifyWords are fixed full-word operand patterns for the
// post-derivation verification run (one per possible input).
var fusedVerifyWords = [MaxFusedInputs]uint64{
	0xA5F0_0FC3_5A3C_96E1,
	0x0FF0_C3A5_E196_3CA5,
	0xDEAD_BEEF_0135_8BD9,
	0x7E57_AB1E_C0FF_EE11,
	0x1234_5678_9ABC_DEF0,
	0x8642_FDB9_7531_ECA8,
}

// tableMask returns the 2^k-bit truth-table mask.
func tableMask(k int) uint64 {
	if k >= MaxFusedInputs {
		return ^uint64(0)
	}
	return 1<<(1<<uint(k)) - 1
}

// DeriveFused probes exec's execution of the spec's command sequence on
// a scratch subarray — all 2^K input combinations packed into one
// 64-column run — reads the k-input truth table back from the result
// row, and compiles it to a block-wise word-level program (Shannon
// decomposition with subfunction sharing). Like Derive, the result is
// grounded in the device model: a verification run on full-word operand
// patterns cross-checks the compiled kernel against the engine, and any
// disagreement (or non-uniform behaviour across bit positions) fails
// derivation so the caller stays on a command-accurate path.
func DeriveFused(exec Executor, spec FusedSpec, module dram.Config) (*Fused, error) {
	if exec == nil {
		return nil, fmt.Errorf("kernel: nil executor")
	}
	if err := spec.validate(); err != nil {
		return nil, err
	}
	dcc := module.DualContactRows
	if dcc < 2 {
		dcc = 2
	}
	// Registers live in rows 0..Regs-1. Engines stage scratch in the top
	// rows (Ambit's 6-row B-group, DRISA's 4 NOR-latch rows) and the
	// dual-contact rows, so grant 8 rows of headroom above the registers.
	rows := spec.Regs + 8
	if rows < probeRows {
		rows = probeRows
	}
	sub := dram.NewSubarray(dram.Config{
		Banks:            1,
		SubarraysPerBank: 1,
		RowsPerSubarray:  rows,
		Columns:          probeCols,
		DualContactRows:  dcc,
	})

	word, err := runFusedProbe(exec, &spec, sub, varPat64[:spec.K])
	if err != nil {
		return nil, fmt.Errorf("kernel: probing fused spec: %w", err)
	}
	// The packed input patterns are periodic in 2^K, so a pure per-bit
	// function must read back periodic too; any aperiodicity means the
	// sequence is position-dependent.
	mask := tableMask(spec.K)
	table := word & mask
	for shift := 1 << uint(spec.K); shift < 64; shift += 1 << uint(spec.K) {
		if (word>>uint(shift))&mask != table {
			return nil, fmt.Errorf("kernel: fused spec is not a pure bitwise function: aperiodic probe word %016x", word)
		}
	}

	f, err := synthesize(table, spec.K)
	if err != nil {
		return nil, err
	}
	if err := f.pack(); err != nil {
		return nil, err
	}
	// Shannon synthesis reconstructs the function from the table alone and
	// can cost several times the cluster's own gate count. The spec's
	// register program is a word-level implementation too; lower it
	// directly and keep whichever compiles to fewer gates — but only after
	// checking the lowering against the probed word, so a canonical-gate
	// assumption that disagrees with the engine's observed behaviour is
	// discarded (ties and degenerate collapses stay with the synthesis).
	if g := compileSpec(&spec, table); g != nil && len(g.code) < len(f.code) && g.pack() == nil {
		srcs := make([][]uint64, spec.K)
		for j := range srcs {
			srcs[j] = []uint64{varPat64[j]}
		}
		var got [1]uint64
		g.Apply(got[:], srcs)
		if got[0] == word {
			f = g
		}
	}
	got, err := runFusedProbe(exec, &spec, sub, fusedVerifyWords[:spec.K])
	if err != nil {
		return nil, fmt.Errorf("kernel: verifying fused spec: %w", err)
	}
	srcs := make([][]uint64, spec.K)
	for j := range srcs {
		srcs[j] = []uint64{fusedVerifyWords[j]}
	}
	var want [1]uint64
	f.Apply(want[:], srcs)
	if got != want[0] {
		return nil, fmt.Errorf("kernel: fused spec is not a pure bitwise function: device %016x, compiled table %016x",
			got, want[0])
	}
	return f, nil
}

// specTab maps an engine op to its canonical 4-bit word truth table
// (bit i = f(a=i&1, b=(i>>1)&1)); unary ops read A through both operands.
func specTab(op engine.Op) (tab uint8, unary, ok bool) {
	switch op {
	case engine.OpNOT:
		return 0b0101, true, true
	case engine.OpAND:
		return 0b1000, false, true
	case engine.OpOR:
		return 0b1110, false, true
	case engine.OpNAND:
		return 0b0111, false, true
	case engine.OpNOR:
		return 0b0001, false, true
	case engine.OpXOR:
		return 0b0110, false, true
	case engine.OpXNOR:
		return 0b1001, false, true
	case engine.OpCOPY:
		return 0b1010, true, true
	}
	return 0, false, false
}

// compileSpec lowers the spec's own register program gate-for-gate to a
// word-level fused program over the same register numbering (inputs
// 0..K-1, scratch K..Regs-1). The lowering assumes canonical gate
// semantics, so the caller must validate the result against the probed
// truth table before trusting it. Returns nil when the spec cannot be
// lowered: an unknown op, a read of a never-written scratch register
// (pooled register files are not zeroed), too much scratch, or a result
// left in an input register (the result view must alias dst).
func compileSpec(spec *FusedSpec, table uint64) *Fused {
	nscratch := spec.Regs - spec.K
	if nscratch > fusedMaxScratch || spec.Result < spec.K || len(spec.Ops) == 0 {
		return nil
	}
	defined := make([]bool, spec.Regs)
	for j := 0; j < spec.K; j++ {
		defined[j] = true
	}
	code := make([]fusedInstr, 0, len(spec.Ops))
	for _, op := range spec.Ops {
		tab, unary, ok := specTab(op.Op)
		if !ok {
			return nil
		}
		b := op.B
		if unary {
			b = op.A
		}
		if !defined[op.A] || !defined[b] {
			return nil
		}
		code = append(code, fusedInstr{
			tab: tab,
			dst: uint8(op.Dst),
			a:   uint8(op.A),
			b:   uint8(b),
		})
		defined[op.Dst] = true
	}
	if !defined[spec.Result] {
		return nil
	}
	return &Fused{
		k:        spec.K,
		table:    table,
		code:     code,
		nscratch: nscratch,
		res:      uint8(spec.Result),
		resConst: resOperand,
	}
}

// runFusedProbe loads the K input rows with the given words, executes the
// spec's command sequence, and returns the result row's first word.
func runFusedProbe(exec Executor, spec *FusedSpec, sub *dram.Subarray, inputs []uint64) (uint64, error) {
	sub.Precharge()
	for j, w := range inputs {
		sub.LoadRow(j, bitvec.FromWords([]uint64{w}, probeCols))
	}
	// Spec registers have clean read-many semantics. When the engine's
	// sequence consumes its A row (engine.OperandConsumer — ELP2IM's
	// two-buffer XOR/XNOR), re-stage A into a headroom row first; row Regs
	// is free, since consuming engines scratch only in the dual-contact
	// rows.
	oc, _ := exec.(engine.OperandConsumer)
	staging := spec.Regs
	for _, op := range spec.Ops {
		a := op.A
		if oc != nil && oc.ConsumesOperandA(op.Op) {
			if err := exec.Execute(sub, engine.OpCOPY, staging, a, -1); err != nil {
				return 0, err
			}
			a = staging
		}
		b := -1
		if !op.Op.Unary() {
			b = op.B
		}
		if err := exec.Execute(sub, op.Op, op.Dst, a, b); err != nil {
			return 0, err
		}
	}
	return sub.RowData(spec.Result).Words()[0], nil
}

// Synthesis operand encoding: non-negative values are inputs (0..k-1)
// then SSA values (k+i for the value defined by instruction i); the two
// negatives are the constant functions.
const (
	synConst0 = -1
	synConst1 = -2
)

// synKey memoizes one subfunction during Shannon decomposition.
type synKey struct {
	table uint64
	n     int
}

// opKey memoizes one emitted word operation (value numbering).
type opKey struct {
	tab  uint8
	a, b int
}

// synState carries one synthesis run.
type synState struct {
	k     int
	code  []opKey // SSA program: instruction i defines value k+i
	funcs map[synKey]int
	ops   map[opKey]int
	nots  map[int]int
}

// synthesize compiles a 2^k-entry truth table to a word-level program:
// Shannon decomposition on the highest variable with memoized
// subfunctions, constant/identity folding, and a liveness-based register
// allocation bounded by fusedMaxScratch.
func synthesize(table uint64, k int) (*Fused, error) {
	s := &synState{
		k:     k,
		funcs: map[synKey]int{},
		ops:   map[opKey]int{},
		nots:  map[int]int{},
	}
	res := s.rec(table&tableMask(k), k)
	return s.compile(table&tableMask(k), res)
}

// rec returns the operand computing the n-variable subfunction `table`.
func (s *synState) rec(table uint64, n int) int {
	mask := tableMask2(n)
	table &= mask
	if table == 0 {
		return synConst0
	}
	if table == mask {
		return synConst1
	}
	key := synKey{table: table, n: n}
	if v, ok := s.funcs[key]; ok {
		return v
	}
	// Identity or complement of a single input.
	for j := 0; j < n; j++ {
		if pat := varPat64[j] & mask; table == pat {
			s.funcs[key] = j
			return j
		} else if table == ^pat&mask {
			v := s.not(j)
			s.funcs[key] = v
			return v
		}
	}
	// Shannon on the highest variable: table = hi·x_{n-1} + lo·¬x_{n-1}.
	half := uint(1) << uint(n-1)
	loMask := tableMask2(n - 1)
	lo := table & loMask
	hi := (table >> half) & loMask
	var v int
	switch {
	case lo == hi:
		v = s.rec(lo, n-1)
	case hi == ^lo&loMask:
		// f = lo ⊕ x_{n-1}: the selector toggles the subfunction.
		v = s.emit(0b0110, s.rec(lo, n-1), n-1)
	default:
		// General mux; emit's constant folding collapses the degenerate
		// halves (lo==0 → sel∧hi, hi==1 → lo∨sel, ...) for free.
		l, h := s.rec(lo, n-1), s.rec(hi, n-1)
		sel := n - 1
		v = s.emit(0b1110, s.emit(0b1000, sel, h), s.emit(0b0010, l, sel))
	}
	s.funcs[key] = v
	return v
}

// tableMask2 is tableMask for subfunction widths (n may reach 6).
func tableMask2(n int) uint64 {
	if n >= 6 {
		return ^uint64(0)
	}
	return 1<<(1<<uint(n)) - 1
}

// not returns the operand computing ¬x, memoized.
func (s *synState) not(x int) int {
	switch x {
	case synConst0:
		return synConst1
	case synConst1:
		return synConst0
	}
	if v, ok := s.nots[x]; ok {
		return v
	}
	v := s.define(opKey{tab: 0b0101, a: x, b: x})
	s.nots[x] = v
	return v
}

// emit returns the operand computing tab(a, b), folding constants,
// equal operands, and degenerate tables, and value-numbering the rest.
// Table bit i = f(a=i&1, b=i>>1&1), matching binaryFn.
func (s *synState) emit(tab uint8, a, b int) int {
	t0, t1, t2, t3 := tab&1, tab>>1&1, tab>>2&1, tab>>3&1
	switch {
	case a == b:
		return s.foldUnary(t0|t3<<1, a)
	case a == synConst0:
		return s.foldUnary(t0|t2<<1, b)
	case a == synConst1:
		return s.foldUnary(t1|t3<<1, b)
	case b == synConst0:
		return s.foldUnary(t0|t1<<1, a)
	case b == synConst1:
		return s.foldUnary(t2|t3<<1, a)
	}
	switch tab {
	case 0b0000:
		return synConst0
	case 0b1111:
		return synConst1
	case 0b1010:
		return a
	case 0b1100:
		return b
	case 0b0101:
		return s.not(a)
	case 0b0011:
		return s.not(b)
	}
	// Canonicalize under operand swap (bit1 ↔ bit2) so a∧b and b∧a — and
	// a∧¬b vs ¬b∧a — value-number identically.
	swapped := tab&0b1001 | tab&0b0010<<1 | tab&0b0100>>1
	if swapped < tab || (swapped == tab && a > b) {
		tab, a, b = swapped, b, a
	}
	return s.define(opKey{tab: tab, a: a, b: b})
}

// foldUnary reduces a 2-entry table over one operand: bit 0 = g(0),
// bit 1 = g(1).
func (s *synState) foldUnary(u uint8, x int) int {
	switch u {
	case 0b00:
		return synConst0
	case 0b11:
		return synConst1
	case 0b10:
		return x
	default: // 0b01
		return s.not(x)
	}
}

// define appends one SSA instruction (or returns its memoized value).
func (s *synState) define(k opKey) int {
	if v, ok := s.ops[k]; ok {
		return v
	}
	v := s.k + len(s.code)
	s.code = append(s.code, k)
	s.ops[k] = v
	return v
}

// compile finishes a synthesis: dead-code elimination over the SSA
// program, then a liveness-scan register allocation into at most
// fusedMaxScratch scratch registers (word loops are element-wise, so a
// destination may reuse a dying operand's register).
func (s *synState) compile(table uint64, res int) (*Fused, error) {
	f := &Fused{k: s.k, table: table, resConst: resOperand}
	switch {
	case res == synConst0:
		f.resConst = resZero
		return f, nil
	case res == synConst1:
		f.resConst = resOne
		return f, nil
	case res < s.k:
		f.res = uint8(res)
		return f, nil
	}

	// Mark live SSA values backward from the result.
	live := make([]bool, len(s.code))
	live[res-s.k] = true
	for i := len(s.code) - 1; i >= 0; i-- {
		if !live[i] {
			continue
		}
		if a := s.code[i].a; a >= s.k {
			live[a-s.k] = true
		}
		if b := s.code[i].b; b >= s.k {
			live[b-s.k] = true
		}
	}

	// Last use per live value (the result lives to the end).
	lastUse := make([]int, len(s.code))
	for i, in := range s.code {
		if !live[i] {
			continue
		}
		if a := in.a; a >= s.k {
			lastUse[a-s.k] = i
		}
		if b := in.b; b >= s.k {
			lastUse[b-s.k] = i
		}
	}
	lastUse[res-s.k] = len(s.code)

	reg := make([]int, len(s.code))
	var free []int
	alloc := func() int {
		if n := len(free); n > 0 {
			r := free[n-1]
			free = free[:n-1]
			return r
		}
		r := f.nscratch
		f.nscratch++
		return r
	}
	operand := func(v, at int) uint8 {
		if v < s.k {
			return uint8(v)
		}
		if lastUse[v-s.k] == at {
			free = append(free, reg[v-s.k])
		}
		return uint8(s.k + reg[v-s.k])
	}
	for i, in := range s.code {
		if !live[i] {
			continue
		}
		a := operand(in.a, i)
		b := a
		if in.b != in.a {
			b = operand(in.b, i)
		}
		reg[i] = alloc()
		f.code = append(f.code, fusedInstr{
			tab: in.tab,
			dst: uint8(s.k + reg[i]),
			a:   a,
			b:   b,
		})
	}
	if f.nscratch > fusedMaxScratch {
		return nil, fmt.Errorf("kernel: fused synthesis needs %d scratch registers, max %d", f.nscratch, fusedMaxScratch)
	}
	f.res = uint8(s.k + reg[res-s.k])
	return f, nil
}

// fusedEntry is one cached derivation outcome.
type fusedEntry struct {
	f   *Fused
	err error
}

// fusedCacheCap bounds the fused-kernel cache. Specs come from user
// expressions, so the population is unbounded; on overflow an arbitrary
// entry is evicted (re-derivation is one engine probe — cheap).
const fusedCacheCap = 1024

// FusedSet lazily derives and memoizes fused kernels for one executor,
// keyed by the full spec (command sequence and register shape). Like
// Set, derivation failures are cached so the caller's fallback decision
// stays O(1). A FusedSet is safe for concurrent use.
type FusedSet struct {
	exec   Executor
	module dram.Config

	mu      sync.Mutex
	entries map[string]fusedEntry
}

// NewFusedSet returns a fused-kernel cache probing exec under module's
// dual-contact geometry.
func NewFusedSet(exec Executor, module dram.Config) *FusedSet {
	return &FusedSet{exec: exec, module: module, entries: map[string]fusedEntry{}}
}

// Fused returns the spec's compiled kernel, deriving it on first use.
// The error (nil or not) is stable across calls while the entry stays
// cached.
func (s *FusedSet) Fused(spec FusedSpec) (*Fused, error) {
	key := spec.key()
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.entries[key]; ok {
		return e.f, e.err
	}
	f, err := DeriveFused(s.exec, spec, s.module)
	if len(s.entries) >= fusedCacheCap {
		for k := range s.entries {
			delete(s.entries, k)
			break
		}
	}
	s.entries[key] = fusedEntry{f: f, err: err}
	return f, err
}
