package kernel

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/ambit"
	"repro/internal/bitvec"
	"repro/internal/dram"
	"repro/internal/drisa"
	"repro/internal/elpim"
	"repro/internal/engine"
)

// allOps is every operation the facade dispatches.
var allOps = []engine.Op{
	engine.OpNOT, engine.OpAND, engine.OpOR, engine.OpNAND,
	engine.OpNOR, engine.OpXOR, engine.OpXNOR, engine.OpCOPY,
}

// engines returns the derivation targets: each design under every
// reserved-row configuration the facade exposes.
func engines(t *testing.T) map[string]Executor {
	t.Helper()
	one := elpim.DefaultConfig()
	two := elpim.DefaultConfig()
	two.ReservedRows = 2
	ht := elpim.DefaultConfig()
	ht.Mode = elpim.HighThroughput
	return map[string]Executor{
		"elpim-1":  elpim.MustNew(one),
		"elpim-2":  elpim.MustNew(two),
		"elpim-ht": elpim.MustNew(ht),
		"ambit":    ambit.MustNew(ambit.DefaultConfig()),
		"drisa":    drisa.MustNew(drisa.DefaultConfig()),
	}
}

// TestDeriveMatchesGolden derives every op's kernel from every engine and
// checks the compiled function against the host golden model on random
// words.
func TestDeriveMatchesGolden(t *testing.T) {
	mod := dram.Default()
	rng := rand.New(rand.NewSource(7))
	for name, exec := range engines(t) {
		for _, op := range allOps {
			k, err := Derive(exec, op, mod)
			if err != nil {
				t.Fatalf("%s/%v: %v", name, op, err)
			}
			if k.Op() != op || k.Unary() != op.Unary() {
				t.Fatalf("%s/%v: kernel metadata %v", name, op, k)
			}
			const n = 4 * 64
			a := bitvec.Random(rng, n)
			b := bitvec.Random(rng, n)
			want := bitvec.New(n)
			op.Golden(want, a, b)
			dst := make([]uint64, n/64)
			k.Apply(dst, a.Words(), b.Words())
			got := bitvec.FromWords(dst, n)
			if !got.Equal(want) {
				t.Fatalf("%s/%v (%v): kernel disagrees with golden\n got %v\nwant %v",
					name, op, k, got, want)
			}
		}
	}
}

// TestDeriveTables spot-checks the derived truth tables against the
// canonical encodings.
func TestDeriveTables(t *testing.T) {
	e := elpim.MustNew(elpim.DefaultConfig())
	mod := dram.Default()
	want := map[engine.Op]uint8{
		engine.OpAND:  0b1000,
		engine.OpOR:   0b1110,
		engine.OpXOR:  0b0110,
		engine.OpXNOR: 0b1001,
		engine.OpNAND: 0b0111,
		engine.OpNOR:  0b0001,
		engine.OpNOT:  0b01,
		engine.OpCOPY: 0b10,
	}
	for op, table := range want {
		k, err := Derive(e, op, mod)
		if err != nil {
			t.Fatalf("%v: %v", op, err)
		}
		if k.Table() != table {
			t.Errorf("%v: table %04b, want %04b", op, k.Table(), table)
		}
	}
}

// brokenExec returns a result that depends on bit position, which no pure
// bitwise kernel can express.
type brokenExec struct{}

func (brokenExec) Execute(sub *dram.Subarray, op engine.Op, dst, a, b int) error {
	row := bitvec.New(sub.Columns())
	row.SetBit(5, true) // position-dependent: passes a 4-bit probe read
	sub.LoadRow(dst, row)
	return nil
}

// failingExec rejects every operation.
type failingExec struct{}

func (failingExec) Execute(*dram.Subarray, engine.Op, int, int, int) error {
	return errors.New("nope")
}

// TestDeriveRejectsNonBitwise checks the verification pass: an executor
// whose behaviour is not a per-bit function must not compile.
func TestDeriveRejectsNonBitwise(t *testing.T) {
	if _, err := Derive(brokenExec{}, engine.OpAND, dram.Default()); err == nil {
		t.Fatal("expected verification failure for position-dependent executor")
	}
	if _, err := Derive(failingExec{}, engine.OpAND, dram.Default()); err == nil {
		t.Fatal("expected probe failure for erroring executor")
	}
	if _, err := Derive(nil, engine.OpAND, dram.Default()); err == nil {
		t.Fatal("expected error for nil executor")
	}
}

// TestAllBinaryTables exercises every one of the 16 binary and 4 unary
// compiled loops directly (engines only produce 8 of them).
func TestAllBinaryTables(t *testing.T) {
	a := []uint64{verifyA, 0, ^uint64(0), 0x1234_5678_9ABC_DEF0}
	b := []uint64{verifyB, ^uint64(0), 0, 0x0F0F_0F0F_F0F0_F0F0}
	for table := uint8(0); table < 16; table++ {
		fn := binaryFn(table)
		dst := make([]uint64, len(a))
		fn(dst, a, b)
		for w := range dst {
			for bit := 0; bit < 64; bit++ {
				ai := a[w] >> uint(bit) & 1
				bi := b[w] >> uint(bit) & 1
				want := uint64(table) >> (bi<<1 | ai) & 1
				if dst[w]>>uint(bit)&1 != want {
					t.Fatalf("table %04b: word %d bit %d: got %d want %d",
						table, w, bit, dst[w]>>uint(bit)&1, want)
				}
			}
		}
	}
	for table := uint8(0); table < 4; table++ {
		fn := unaryFn(table)
		dst := make([]uint64, len(a))
		fn(dst, a, nil)
		for w := range dst {
			for bit := 0; bit < 64; bit++ {
				ai := a[w] >> uint(bit) & 1
				want := uint64(table) >> ai & 1
				if dst[w]>>uint(bit)&1 != want {
					t.Fatalf("unary table %02b: word %d bit %d: got %d want %d",
						table, w, bit, dst[w]>>uint(bit)&1, want)
				}
			}
		}
	}
}

// TestApplyAliasing checks that dst may alias an operand (the reduction
// fold applies kernels in place on the accumulator).
func TestApplyAliasing(t *testing.T) {
	e := elpim.MustNew(elpim.DefaultConfig())
	k, err := Derive(e, engine.OpAND, dram.Default())
	if err != nil {
		t.Fatal(err)
	}
	dst := []uint64{verifyA, verifyB}
	a := []uint64{verifyB, verifyA}
	k.Apply(dst, a, dst)
	if dst[0] != verifyA&verifyB || dst[1] != verifyB&verifyA {
		t.Fatalf("aliased apply wrong: %x", dst)
	}
}

// TestApplyAllocFree is the zero-allocation gate on the compiled loops.
func TestApplyAllocFree(t *testing.T) {
	e := elpim.MustNew(elpim.DefaultConfig())
	mod := dram.Default()
	for _, op := range allOps {
		k, err := Derive(e, op, mod)
		if err != nil {
			t.Fatal(err)
		}
		dst := make([]uint64, 128)
		a := make([]uint64, 128)
		b := make([]uint64, 128)
		if allocs := testing.AllocsPerRun(100, func() { k.Apply(dst, a, b) }); allocs != 0 {
			t.Errorf("%v: Apply allocates %.1f/op", op, allocs)
		}
	}
}

// TestSetConcurrent hammers one Set from many goroutines; every caller
// must observe the same kernel instance and derivation must happen once.
func TestSetConcurrent(t *testing.T) {
	s := NewSet(elpim.MustNew(elpim.DefaultConfig()), dram.Default())
	var wg sync.WaitGroup
	results := make([]*Kernel, 16)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			k, err := s.Kernel(engine.OpXOR)
			if err != nil {
				panic(fmt.Sprintf("derive: %v", err))
			}
			results[i] = k
		}(i)
	}
	wg.Wait()
	for _, k := range results[1:] {
		if k != results[0] {
			t.Fatal("Set returned distinct kernel instances for one op")
		}
	}
}

// TestSetCachesErrors checks that a failed derivation is memoized.
func TestSetCachesErrors(t *testing.T) {
	s := NewSet(failingExec{}, dram.Default())
	_, err1 := s.Kernel(engine.OpAND)
	_, err2 := s.Kernel(engine.OpAND)
	if err1 == nil || err2 == nil {
		t.Fatal("expected cached derivation error")
	}
	if _, err := s.Kernel(engine.Op(99)); err == nil {
		t.Fatal("expected error for out-of-range op")
	}
}
