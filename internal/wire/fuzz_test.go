package wire

import (
	"errors"
	"testing"
)

// fuzzSeeds are the in-code seed corpus: one well-formed frame body per
// request kind plus a few near-miss mutations. The checked-in corpus
// under testdata/fuzz mirrors these (same generator, seedFrames).
func fuzzSeeds(f *testing.F) {
	for _, body := range seedFrames() {
		f.Add(body)
	}
	// Near misses: truncations and tail garbage of a representative frame.
	op := AppendOpRequest(nil, 6, BitAnd, 0, "dst", "x", "y")[frameLenSize:]
	f.Add(op[:headerLen])
	f.Add(op[:len(op)-1])
	f.Add(append(append([]byte{}, op...), 0x00))
	f.Add([]byte{})
	f.Add([]byte{0xEE})
}

// FuzzDecodeFrame is the crash-safety target: DecodeRequest must never
// panic, never over-read, and classify every rejection as ErrMalformed —
// regardless of input. Accepted requests must survive an encode/decode
// round trip (the decoder's view is self-consistent).
func FuzzDecodeFrame(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, frame []byte) {
		var req Request
		err := DecodeRequest(frame, &req, nil)
		if err != nil {
			if !errors.Is(err, ErrMalformed) {
				t.Fatalf("decode error not tagged ErrMalformed: %v", err)
			}
			return
		}
		re := EncodeRequest(nil, &req)
		var req2 Request
		if err := DecodeRequest(re[frameLenSize:], &req2, nil); err != nil {
			t.Fatalf("re-decode of accepted frame failed: %v\nframe: %x\nre-encoded: %x", err, frame, re)
		}
		if !reqEqual(&req, &req2) {
			t.Fatalf("accepted frame unstable under round trip:\n first %+v\nsecond %+v", req, req2)
		}
	})
}

// FuzzRoundTrip is the byte-stability target: any frame the decoder
// accepts must re-encode to exactly the bytes it was decoded from — the
// codec admits no non-canonical encodings, so there is exactly one wire
// image per request and cross-implementation hashing/caching of frames is
// sound.
func FuzzRoundTrip(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, frame []byte) {
		var req Request
		if err := DecodeRequest(frame, &req, nil); err != nil {
			return
		}
		re := EncodeRequest(nil, &req)
		if string(re[frameLenSize:]) != string(frame) {
			t.Fatalf("accepted frame is non-canonical:\n   input %x\nre-encode %x\nrequest %+v", frame, re[frameLenSize:], req)
		}
	})
}
