// Command gencorpus regenerates the checked-in fuzz seed corpus under
// internal/wire/testdata/fuzz. Run from the repo root:
//
//	go run ./internal/wire/gencorpus
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"

	"repro/internal/wire"
)

func main() {
	frames := map[string][]byte{
		"ping":   wire.AppendPingRequest(nil, 1),
		"put":    wire.AppendPutRequest(nil, 2, "v0", 130, []uint64{^uint64(0), ^uint64(0), 3}),
		"putz":   wire.AppendPutRequest(nil, 3, "zeros", 64, nil),
		"get":    wire.AppendGetRequest(nil, 4, "v0"),
		"delete": wire.AppendDeleteRequest(nil, 5, "v0"),
		"op":     wire.AppendOpRequest(nil, 6, wire.BitAnd, 0, "dst", "x", "y"),
		"opnot":  wire.AppendOpRequest(nil, 7, wire.BitNot, 250, "dst", "x", ""),
		"reduce": wire.AppendReduceRequest(nil, 8, wire.BitOr, 0, "dst", []string{"a", "b", "c"}),
		"eval":   wire.AppendEvalRequest(nil, 9, 0, "dst", "(a & b) | ~c"),
		"stats":  wire.AppendStatsRequest(nil, 10),
		"arith":  wire.AppendArithRequest(nil, 11, wire.ArithAdd, 0, "z", "a", "b", ""),
		"arithm": wire.AppendArithRequest(nil, 12, wire.ArithSelect, 100, "z", "a", "b", "m"),
		"pvert":  wire.AppendPutVertRequest(nil, 13, "v", 8, []uint64{5, 250, 77}),
		"gvert":  wire.AppendGetVertRequest(nil, 14, "v"),
		"query":  wire.AppendQueryRequest(nil, 15, 0, "ns", "(a & b) | ~c", wire.QueryCount, 0, 0),
		"queryp": wire.AppendQueryRequest(nil, 16, 250, "ns", "a ^ b", wire.QueryPositions, 4096, 128),
	}
	op := frames["op"][4:]
	extra := map[string][]byte{
		"trunc-header": op[:9],
		"trunc-tail":   op[:len(op)-1],
		"garbage":      {0xEE, 0xFF, 0x00},
	}
	for _, target := range []string{"FuzzDecodeFrame", "FuzzRoundTrip"} {
		dir := filepath.Join("internal", "wire", "testdata", "fuzz", target)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			panic(err)
		}
		write := func(name string, body []byte) {
			content := "go test fuzz v1\n[]byte(" + strconv.Quote(string(body)) + ")\n"
			if err := os.WriteFile(filepath.Join(dir, "seed-"+name), []byte(content), 0o644); err != nil {
				panic(err)
			}
		}
		for name, f := range frames {
			write(name, f[4:]) // corpus entries are frame bodies (no length word)
		}
		for name, f := range extra {
			write(name, f)
		}
	}
	fmt.Println("corpus written")
}
