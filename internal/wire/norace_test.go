//go:build !race

package wire

// raceEnabled is false in plain builds; the zero-allocation gate runs.
const raceEnabled = false
