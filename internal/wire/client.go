package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
)

// Client is a multiplexing elpwire client: one persistent connection
// carries many concurrent in-flight requests, matched to their callers by
// request id, so N goroutines can share a connection and pipeline without
// head-of-line blocking on the serving side. Request frames from
// concurrent callers are coalesced: callers enqueue encoded frames and a
// dedicated writer goroutine drains the whole queue in one writev per
// wakeup, so under load many requests share a syscall while a lone
// request still flushes immediately. All methods are safe for concurrent
// use. The steady-state op path allocates nothing: request encode
// buffers, response buffers and call slots all cycle through pools.
type Client struct {
	nc net.Conn
	br *bufio.Reader

	// Request coalescer, mirroring the server's response flusher: outq
	// and werr are guarded by wmu; the writer goroutine drains outq in
	// one writev per wakeup and parks on wcond while it is empty.
	wmu        sync.Mutex
	wcond      *sync.Cond
	outq       []*[]byte
	werr       error
	closing    bool
	iov        net.Buffers // writer-only writev scratch
	writerDone chan struct{}

	flushes atomic.Uint64 // write-path flushes (≈ syscalls)
	frames  atomic.Uint64 // request frames written

	mu      sync.Mutex // guards pending, nextID, readErr
	pending map[uint64]*call
	nextID  uint64
	readErr error

	readerDone chan struct{}
	maxFrame   int
}

// call is one in-flight request's rendezvous slot.
type call struct {
	done    chan struct{} // buffered(1); signaled exactly once
	status  uint8
	payload *[]byte // response frame body (id+status+payload); pooled
}

// callPool recycles rendezvous slots.
var callPool = sync.Pool{New: func() any {
	return &call{done: make(chan struct{}, 1)}
}}

// Dial connects to an elpwire server.
func Dial(addr string) (*Client, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(nc), nil
}

// NewClient wraps an established connection. The client owns the
// connection and closes it on Close.
func NewClient(nc net.Conn) *Client {
	c := &Client{
		nc:         nc,
		br:         bufio.NewReaderSize(nc, 64<<10),
		pending:    make(map[uint64]*call),
		writerDone: make(chan struct{}),
		readerDone: make(chan struct{}),
		maxFrame:   DefaultMaxFrame,
	}
	c.wcond = sync.NewCond(&c.wmu)
	go c.writeLoop()
	go c.readLoop()
	return c
}

// Close tears the connection down; every in-flight call fails.
func (c *Client) Close() error {
	c.wmu.Lock()
	c.closing = true
	c.wmu.Unlock()
	c.wcond.Signal()
	err := c.nc.Close()
	<-c.writerDone
	<-c.readerDone
	return err
}

// WriteStats reports the client's write-path batching counters: flushes
// is the number of write wakeups (each one syscall on a vectored
// connection) and frames the number of request frames they carried.
// frames/flushes > 1 means concurrent callers shared syscalls.
func (c *Client) WriteStats() (flushes, frames uint64) {
	return c.flushes.Load(), c.frames.Load()
}

// enqueue hands one encoded request frame to the writer goroutine,
// taking ownership of the pooled buffer. It fails fast — recycling the
// frame — once the writer has hit an error or the client is closing.
func (c *Client) enqueue(bp *[]byte) error {
	c.wmu.Lock()
	if c.werr != nil || c.closing {
		err := c.werr
		c.wmu.Unlock()
		putBuf(bp)
		if err == nil {
			err = net.ErrClosed
		}
		return err
	}
	c.outq = append(c.outq, bp)
	c.wmu.Unlock()
	c.wcond.Signal()
	return nil
}

// writeLoop is the connection's single writer: per wakeup it swaps the
// whole outbound queue and writes it in one writev (flush-on-empty, as
// on the server's response side). On a write error it records werr,
// closes the connection — the read loop then fails every pending call —
// and keeps draining the queue so enqueued buffers are recycled.
func (c *Client) writeLoop() {
	defer close(c.writerDone)
	var queue []*[]byte
	for {
		c.wmu.Lock()
		for len(c.outq) == 0 && !c.closing {
			c.wcond.Wait()
		}
		if len(c.outq) == 0 {
			c.wmu.Unlock()
			return
		}
		c.wmu.Unlock()
		// Yield once before draining so callers woken alongside us get to
		// append their frames to this batch; see serverConn.flusher.
		runtime.Gosched()
		c.wmu.Lock()
		queue, c.outq = c.outq, queue[:0]
		failed := c.werr != nil
		c.wmu.Unlock()
		if !failed {
			if err := c.writeBatch(queue); err != nil {
				c.wmu.Lock()
				if c.werr == nil {
					c.werr = err
				}
				c.wmu.Unlock()
				_ = c.nc.Close()
			} else {
				c.flushes.Add(1)
				c.frames.Add(uint64(len(queue)))
			}
		}
		for i, bp := range queue {
			putBuf(bp)
			queue[i] = nil
		}
	}
}

// writeBatch writes every frame in queue with one syscall where the
// connection supports vectored I/O; see serverConn.writeBatch.
func (c *Client) writeBatch(queue []*[]byte) error {
	if len(queue) == 1 {
		_, err := c.nc.Write(*queue[0])
		return err
	}
	c.iov = c.iov[:0]
	for _, bp := range queue {
		c.iov = append(c.iov, *bp)
	}
	v := c.iov
	_, err := v.WriteTo(c.nc)
	return err
}

// readLoop dispatches response frames to their pending calls by id.
func (c *Client) readLoop() {
	defer close(c.readerDone)
	var lenWord [frameLenSize]byte
	for {
		if _, err := io.ReadFull(c.br, lenWord[:]); err != nil {
			c.failAll(err)
			return
		}
		n := int(binary.LittleEndian.Uint32(lenWord[:]))
		if n < headerLen || n > c.maxFrame {
			c.failAll(fmt.Errorf("%w: response body %d bytes", ErrMalformed, n))
			return
		}
		bp := getBuf(n)
		if _, err := io.ReadFull(c.br, *bp); err != nil {
			putBuf(bp)
			c.failAll(fmt.Errorf("wire: truncated response: %w", err))
			return
		}
		id := binary.LittleEndian.Uint64(*bp)
		status := (*bp)[8]
		c.mu.Lock()
		ca := c.pending[id]
		if ca != nil {
			delete(c.pending, id)
		}
		c.mu.Unlock()
		if ca == nil {
			// A response nothing waits for (caller gave up): drop it.
			putBuf(bp)
			continue
		}
		ca.status = status
		ca.payload = bp
		ca.done <- struct{}{}
	}
}

// failAll settles every pending call with err and refuses new ones.
func (c *Client) failAll(err error) {
	if errors.Is(err, io.EOF) {
		err = fmt.Errorf("wire: connection closed: %w", err)
	}
	c.mu.Lock()
	c.readErr = err
	calls := make([]*call, 0, len(c.pending))
	for id, ca := range c.pending {
		delete(c.pending, id)
		calls = append(calls, ca)
	}
	c.mu.Unlock()
	for _, ca := range calls {
		ca.status = StatusInternal
		ca.payload = nil
		ca.done <- struct{}{}
	}
}

// roundTrip registers a call, enqueues the frame built by build (which
// receives the id and a pooled buffer to append the full frame to) for
// the writer goroutine, and waits for the response. On success the
// returned call holds the response; the caller must finish() it after
// decoding.
func (c *Client) roundTrip(build func(id uint64, b []byte) []byte) (*call, error) {
	ca := callPool.Get().(*call)
	c.mu.Lock()
	if c.readErr != nil {
		err := c.readErr
		c.mu.Unlock()
		callPool.Put(ca)
		return nil, err
	}
	c.nextID++
	id := c.nextID
	c.pending[id] = ca
	c.mu.Unlock()

	bp := getBuf(0)
	*bp = build(id, *bp)
	if err := c.enqueue(bp); err != nil {
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		callPool.Put(ca)
		return nil, err
	}
	<-ca.done
	if ca.payload == nil {
		err := c.errNow()
		callPool.Put(ca)
		return nil, err
	}
	return ca, nil
}

// errNow returns the connection's terminal error.
func (c *Client) errNow() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.readErr != nil {
		return c.readErr
	}
	return errors.New("wire: connection failed")
}

// finish recycles a completed call and its payload buffer.
func (c *Client) finish(ca *call) {
	if ca.payload != nil {
		putBuf(ca.payload)
		ca.payload = nil
	}
	ca.status = 0
	callPool.Put(ca)
}

// statusErr converts a non-OK response into a *StatusError. It copies the
// message out of the pooled payload, so the call can be finished by the
// caller regardless.
func statusErr(ca *call) error {
	return DecodeErrorPayload(ca.status, (*ca.payload)[headerLen:])
}

// Ping round-trips an empty frame.
func (c *Client) Ping() error {
	ca, err := c.roundTrip(func(id uint64, b []byte) []byte {
		return AppendPingRequest(b, id)
	})
	if err != nil {
		return err
	}
	defer c.finish(ca)
	if ca.status != StatusOK {
		return statusErr(ca)
	}
	return nil
}

// Put stores a vector of the given bit length. A nil words slice stores
// an all-zero vector; otherwise words must hold exactly ceil(bits/64)
// little-endian words with no bits set beyond the length.
func (c *Client) Put(name string, bits int, words []uint64) error {
	ca, err := c.roundTrip(func(id uint64, b []byte) []byte {
		return AppendPutRequest(b, id, name, bits, words)
	})
	if err != nil {
		return err
	}
	defer c.finish(ca)
	if ca.status != StatusOK {
		return statusErr(ca)
	}
	return nil
}

// Get fetches a vector's contents: its bit length, popcount, and words
// appended to dst (pass nil to allocate).
func (c *Client) Get(name string, dst []uint64) (bits int, popcount uint64, words []uint64, err error) {
	ca, err := c.roundTrip(func(id uint64, b []byte) []byte {
		return AppendGetRequest(b, id, name)
	})
	if err != nil {
		return 0, 0, nil, err
	}
	defer c.finish(ca)
	if ca.status != StatusOK {
		return 0, 0, nil, statusErr(ca)
	}
	d := decoder{b: (*ca.payload)[headerLen:]}
	bits = int(d.u32())
	popcount = d.u64()
	n := int(d.u32())
	raw := d.take(n * 8)
	d.done()
	if d.err != nil {
		return 0, 0, nil, d.err
	}
	words = dst[:0]
	for i := 0; i < n; i++ {
		words = append(words, binary.LittleEndian.Uint64(raw[i*8:]))
	}
	return bits, popcount, words, nil
}

// Delete removes a vector.
func (c *Client) Delete(name string) error {
	ca, err := c.roundTrip(func(id uint64, b []byte) []byte {
		return AppendDeleteRequest(b, id, name)
	})
	if err != nil {
		return err
	}
	defer c.finish(ca)
	if ca.status != StatusOK {
		return statusErr(ca)
	}
	return nil
}

// Op executes dst = op(x, y) (y empty for the unary BitNot/BitCopy) and
// returns the operation's modeled cost. timeoutMS of zero defers to the
// server's default deadline policy.
func (c *Client) Op(op uint8, timeoutMS uint32, dst, x, y string) (Stats, error) {
	ca, err := c.roundTrip(func(id uint64, b []byte) []byte {
		return AppendOpRequest(b, id, op, timeoutMS, dst, x, y)
	})
	if err != nil {
		return Stats{}, err
	}
	defer c.finish(ca)
	if ca.status != StatusOK {
		return Stats{}, statusErr(ca)
	}
	return DecodeStats((*ca.payload)[headerLen:])
}

// Reduce executes dst = srcs[0] op srcs[1] op ... and returns the modeled
// cost.
func (c *Client) Reduce(op uint8, timeoutMS uint32, dst string, srcs []string) (Stats, error) {
	ca, err := c.roundTrip(func(id uint64, b []byte) []byte {
		return AppendReduceRequest(b, id, op, timeoutMS, dst, srcs)
	})
	if err != nil {
		return Stats{}, err
	}
	defer c.finish(ca)
	if ca.status != StatusOK {
		return Stats{}, statusErr(ca)
	}
	return DecodeStats((*ca.payload)[headerLen:])
}

// Eval evaluates a boolean expression over stored vectors, storing the
// result under dst; it returns the modeled cost and the result length.
func (c *Client) Eval(timeoutMS uint32, dst, expr string) (Stats, int, error) {
	ca, err := c.roundTrip(func(id uint64, b []byte) []byte {
		return AppendEvalRequest(b, id, timeoutMS, dst, expr)
	})
	if err != nil {
		return Stats{}, 0, err
	}
	defer c.finish(ca)
	if ca.status != StatusOK {
		return Stats{}, 0, statusErr(ca)
	}
	payload := (*ca.payload)[headerLen:]
	st, err := DecodeStats(payload)
	if err != nil {
		return Stats{}, 0, err
	}
	if len(payload) < statsWireLen+4 {
		return Stats{}, 0, malformedf("eval response is %d bytes", len(payload))
	}
	bits := int(binary.LittleEndian.Uint32(payload[statsWireLen:]))
	return st, bits, nil
}

// Arith executes dst = op(x, y) over stored vertical vectors (y empty
// for the unary ArithPopcount, mask empty for unmasked operations) and
// returns the modeled cost plus the result's element width and count.
func (c *Client) Arith(op uint8, timeoutMS uint32, dst, x, y, mask string) (st Stats, elemWidth, elems int, err error) {
	ca, err := c.roundTrip(func(id uint64, b []byte) []byte {
		return AppendArithRequest(b, id, op, timeoutMS, dst, x, y, mask)
	})
	if err != nil {
		return Stats{}, 0, 0, err
	}
	defer c.finish(ca)
	if ca.status != StatusOK {
		return Stats{}, 0, 0, statusErr(ca)
	}
	payload := (*ca.payload)[headerLen:]
	if st, err = DecodeStats(payload); err != nil {
		return Stats{}, 0, 0, err
	}
	d := decoder{b: payload[statsWireLen:]}
	elemWidth = int(d.u8())
	elems = int(d.u32())
	d.done()
	if d.err != nil {
		return Stats{}, 0, 0, d.err
	}
	return st, elemWidth, elems, nil
}

// PutVert stores a vertical (bit-sliced) vector of width-bit elements.
// Every element value must be < 2^width.
func (c *Client) PutVert(name string, width int, elems []uint64) error {
	ca, err := c.roundTrip(func(id uint64, b []byte) []byte {
		return AppendPutVertRequest(b, id, name, width, elems)
	})
	if err != nil {
		return err
	}
	defer c.finish(ca)
	if ca.status != StatusOK {
		return statusErr(ca)
	}
	return nil
}

// GetVert fetches a vertical vector's element width and values, the
// values appended to dst (pass nil to allocate).
func (c *Client) GetVert(name string, dst []uint64) (width int, elems []uint64, err error) {
	ca, err := c.roundTrip(func(id uint64, b []byte) []byte {
		return AppendGetVertRequest(b, id, name)
	})
	if err != nil {
		return 0, nil, err
	}
	defer c.finish(ca)
	if ca.status != StatusOK {
		return 0, nil, statusErr(ca)
	}
	d := decoder{b: (*ca.payload)[headerLen:]}
	width = int(d.u8())
	n := int(d.u32())
	raw := d.take(n * 8)
	d.done()
	if d.err != nil {
		return 0, nil, d.err
	}
	elems = dst[:0]
	for i := 0; i < n; i++ {
		elems = append(elems, binary.LittleEndian.Uint64(raw[i*8:]))
	}
	return width, elems, nil
}

// QueryResult is a decoded KindQuery response. Bits and Count are always
// set; Words carries the match bitvector in QueryBits mode; Positions and
// NextCursor carry the page in QueryPositions mode (NextCursor zero means
// the page exhausted the matches).
type QueryResult struct {
	// Stats is the predicate evaluation's modeled cost.
	Stats Stats
	// Bits is the universe width of the queried namespace.
	Bits int
	// Count is the match cardinality.
	Count uint64
	// Words is the match bitvector (QueryBits mode only).
	Words []uint64
	// Positions are the page's set-bit positions (QueryPositions mode).
	Positions []uint64
	// NextCursor resumes pagination (QueryPositions mode); zero when the
	// page reached the last match.
	NextCursor uint64
}

// Query evaluates a boolean predicate over the bitmap indices of a
// namespace. mode selects the result shape (a Query* code); cursor and
// limit page the positions mode (a zero limit asks for the server's
// default page size).
func (c *Client) Query(timeoutMS uint32, namespace, predicate string, mode uint8, cursor uint64, limit uint32) (QueryResult, error) {
	ca, err := c.roundTrip(func(id uint64, b []byte) []byte {
		return AppendQueryRequest(b, id, timeoutMS, namespace, predicate, mode, cursor, limit)
	})
	if err != nil {
		return QueryResult{}, err
	}
	defer c.finish(ca)
	if ca.status != StatusOK {
		return QueryResult{}, statusErr(ca)
	}
	payload := (*ca.payload)[headerLen:]
	var qr QueryResult
	if qr.Stats, err = DecodeStats(payload); err != nil {
		return QueryResult{}, err
	}
	d := decoder{b: payload[statsWireLen:]}
	qr.Bits = int(d.u32())
	qr.Count = d.u64()
	switch mode {
	case QueryBits:
		n := int(d.u32())
		raw := d.take(n * 8)
		if d.err == nil {
			qr.Words = make([]uint64, n)
			for i := range qr.Words {
				qr.Words[i] = binary.LittleEndian.Uint64(raw[i*8:])
			}
		}
	case QueryPositions:
		qr.NextCursor = d.u64()
		n := int(d.u32())
		raw := d.take(n * 8)
		if d.err == nil {
			qr.Positions = make([]uint64, n)
			for i := range qr.Positions {
				qr.Positions[i] = binary.LittleEndian.Uint64(raw[i*8:])
			}
		}
	}
	d.done()
	if d.err != nil {
		return QueryResult{}, d.err
	}
	return qr, nil
}

// StatsJSON fetches the serving-layer stats payload: the same JSON bytes
// the HTTP path serves on /v1/stats.
func (c *Client) StatsJSON() ([]byte, error) {
	ca, err := c.roundTrip(func(id uint64, b []byte) []byte {
		return AppendStatsRequest(b, id)
	})
	if err != nil {
		return nil, err
	}
	defer c.finish(ca)
	if ca.status != StatusOK {
		return nil, statusErr(ca)
	}
	return append([]byte(nil), (*ca.payload)[headerLen:]...), nil
}
