//go:build race

package wire

// raceEnabled reports that this build runs under the race detector,
// whose instrumentation allocates — the zero-allocation gate skips
// itself there (it runs in the plain test pass).
const raceEnabled = true
