package wire

import (
	"encoding/binary"
	"math"
)

// This file is the codec: append-style encoders shared by the client and
// the serving loop, and the strict decoder the fuzz targets hammer. Both
// directions operate on explicit byte slices with no hidden state, so
// encode(decode(x)) is testable byte-for-byte, and decoding never reads
// outside the frame it was handed.

// appendU16 appends a little-endian uint16.
func appendU16(b []byte, v uint16) []byte {
	return append(b, byte(v), byte(v>>8))
}

// appendU32 appends a little-endian uint32.
func appendU32(b []byte, v uint32) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

// appendU64 appends a little-endian uint64.
func appendU64(b []byte, v uint64) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

// appendF64 appends a little-endian IEEE-754 float64.
func appendF64(b []byte, v float64) []byte {
	return appendU64(b, math.Float64bits(v))
}

// appendStr16 appends a str16 (uint16 LE length + bytes). Strings longer
// than 65535 bytes cannot be represented; callers validate first
// (EncodeableString).
func appendStr16(b []byte, s string) []byte {
	b = appendU16(b, uint16(len(s)))
	return append(b, s...)
}

// EncodeableString reports whether s fits a str16 field.
func EncodeableString(s string) bool { return len(s) <= maxString }

// AppendStats appends the 48-byte wire encoding of st.
func AppendStats(b []byte, st Stats) []byte {
	b = appendF64(b, st.LatencyNS)
	b = appendF64(b, st.EnergyNJ)
	b = appendF64(b, st.AveragePowerW)
	b = appendU64(b, st.RowOps)
	b = appendU64(b, st.Commands)
	return appendU64(b, st.Wordlines)
}

// DecodeStats decodes the 48-byte wire encoding of Stats.
func DecodeStats(b []byte) (Stats, error) {
	if len(b) < statsWireLen {
		return Stats{}, malformedf("stats payload is %d bytes, want %d", len(b), statsWireLen)
	}
	return Stats{
		LatencyNS:     math.Float64frombits(binary.LittleEndian.Uint64(b[0:])),
		EnergyNJ:      math.Float64frombits(binary.LittleEndian.Uint64(b[8:])),
		AveragePowerW: math.Float64frombits(binary.LittleEndian.Uint64(b[16:])),
		RowOps:        binary.LittleEndian.Uint64(b[24:]),
		Commands:      binary.LittleEndian.Uint64(b[32:]),
		Wordlines:     binary.LittleEndian.Uint64(b[40:]),
	}, nil
}

// AppendWords appends a word payload: u32 LE count + raw LE words.
func AppendWords(b []byte, words []uint64) []byte {
	b = appendU32(b, uint32(len(words)))
	for _, w := range words {
		b = appendU64(b, w)
	}
	return b
}

// appendHeader appends the 9-byte frame body prefix (id + kind). The
// uint32 length word is patched in by FinishFrame.
func appendHeader(b []byte, id uint64, kind uint8) []byte {
	b = appendU64(b, id)
	return append(b, kind)
}

// BeginFrame starts a frame in b: a 4-byte length placeholder, the id and
// the kind byte. Append the payload to the result, then call FinishFrame.
func BeginFrame(b []byte, id uint64, kind uint8) []byte {
	b = appendU32(b, 0)
	return appendHeader(b, id, kind)
}

// FinishFrame patches the length word of the frame begun at offset start
// and returns the completed buffer.
func FinishFrame(b []byte, start int) []byte {
	binary.LittleEndian.PutUint32(b[start:], uint32(len(b)-start-frameLenSize))
	return b
}

// AppendPingRequest appends a complete KindPing request frame.
func AppendPingRequest(b []byte, id uint64) []byte {
	start := len(b)
	b = BeginFrame(b, id, KindPing)
	return FinishFrame(b, start)
}

// AppendPutRequest appends a complete KindPut request frame. A nil words
// slice stores an all-zero vector of the given length.
func AppendPutRequest(b []byte, id uint64, name string, bits int, words []uint64) []byte {
	start := len(b)
	b = BeginFrame(b, id, KindPut)
	b = appendStr16(b, name)
	b = appendU32(b, uint32(bits))
	b = AppendWords(b, words)
	return FinishFrame(b, start)
}

// AppendGetRequest appends a complete KindGet request frame.
func AppendGetRequest(b []byte, id uint64, name string) []byte {
	start := len(b)
	b = BeginFrame(b, id, KindGet)
	b = appendStr16(b, name)
	return FinishFrame(b, start)
}

// AppendDeleteRequest appends a complete KindDelete request frame.
func AppendDeleteRequest(b []byte, id uint64, name string) []byte {
	start := len(b)
	b = BeginFrame(b, id, KindDelete)
	b = appendStr16(b, name)
	return FinishFrame(b, start)
}

// AppendOpRequest appends a complete KindOp request frame.
func AppendOpRequest(b []byte, id uint64, op uint8, timeoutMS uint32, dst, x, y string) []byte {
	start := len(b)
	b = BeginFrame(b, id, KindOp)
	b = append(b, op)
	b = appendU32(b, timeoutMS)
	b = appendStr16(b, dst)
	b = appendStr16(b, x)
	b = appendStr16(b, y)
	return FinishFrame(b, start)
}

// AppendReduceRequest appends a complete KindReduce request frame.
func AppendReduceRequest(b []byte, id uint64, op uint8, timeoutMS uint32, dst string, srcs []string) []byte {
	start := len(b)
	b = BeginFrame(b, id, KindReduce)
	b = append(b, op)
	b = appendU32(b, timeoutMS)
	b = appendStr16(b, dst)
	b = appendU16(b, uint16(len(srcs)))
	for _, s := range srcs {
		b = appendStr16(b, s)
	}
	return FinishFrame(b, start)
}

// AppendEvalRequest appends a complete KindEval request frame.
func AppendEvalRequest(b []byte, id uint64, timeoutMS uint32, dst, expr string) []byte {
	start := len(b)
	b = BeginFrame(b, id, KindEval)
	b = appendU32(b, timeoutMS)
	b = appendStr16(b, dst)
	b = appendStr16(b, expr)
	return FinishFrame(b, start)
}

// AppendArithRequest appends a complete KindArith request frame. y is
// empty for unary operations, mask for unmasked ones.
func AppendArithRequest(b []byte, id uint64, op uint8, timeoutMS uint32, dst, x, y, mask string) []byte {
	start := len(b)
	b = BeginFrame(b, id, KindArith)
	b = append(b, op)
	b = appendU32(b, timeoutMS)
	b = appendStr16(b, dst)
	b = appendStr16(b, x)
	b = appendStr16(b, y)
	b = appendStr16(b, mask)
	return FinishFrame(b, start)
}

// AppendPutVertRequest appends a complete KindPutVert request frame
// storing width-bit elements.
func AppendPutVertRequest(b []byte, id uint64, name string, width int, elems []uint64) []byte {
	start := len(b)
	b = BeginFrame(b, id, KindPutVert)
	b = appendStr16(b, name)
	b = append(b, byte(width))
	b = AppendWords(b, elems)
	return FinishFrame(b, start)
}

// AppendGetVertRequest appends a complete KindGetVert request frame.
func AppendGetVertRequest(b []byte, id uint64, name string) []byte {
	start := len(b)
	b = BeginFrame(b, id, KindGetVert)
	b = appendStr16(b, name)
	return FinishFrame(b, start)
}

// AppendQueryRequest appends a complete KindQuery request frame. cursor
// and limit only matter in QueryPositions mode (a zero limit asks for the
// server's default page size).
func AppendQueryRequest(b []byte, id uint64, timeoutMS uint32, namespace, predicate string, mode uint8, cursor uint64, limit uint32) []byte {
	start := len(b)
	b = BeginFrame(b, id, KindQuery)
	b = appendU32(b, timeoutMS)
	b = appendStr16(b, namespace)
	b = appendStr16(b, predicate)
	b = append(b, mode)
	b = appendU64(b, cursor)
	b = appendU32(b, limit)
	return FinishFrame(b, start)
}

// AppendStatsRequest appends a complete KindStats request frame.
func AppendStatsRequest(b []byte, id uint64) []byte {
	start := len(b)
	b = BeginFrame(b, id, KindStats)
	return FinishFrame(b, start)
}

// AppendErrorPayload appends a non-OK response payload: retry_after_ms
// u32 + message str16 (the message is clipped to fit a str16).
func AppendErrorPayload(b []byte, retryAfterMS uint32, msg string) []byte {
	if len(msg) > maxString {
		msg = msg[:maxString]
	}
	b = appendU32(b, retryAfterMS)
	return appendStr16(b, msg)
}

// DecodeErrorPayload decodes a non-OK response payload into a
// StatusError carrying the given status code.
func DecodeErrorPayload(code uint8, payload []byte) *StatusError {
	e := &StatusError{Code: code}
	d := decoder{b: payload}
	e.RetryAfterMS = d.u32()
	if msg, ok := d.str16Bytes(); ok {
		e.Msg = string(msg)
	}
	return e
}

// decoder walks a frame with explicit bounds checks: every read either
// returns the value or sets err, and nothing ever indexes past len(b).
type decoder struct {
	b   []byte
	off int
	err error
}

// fail records the first error.
func (d *decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = malformedf(format, args...)
	}
}

// take returns the next n bytes, or nil after recording truncation.
func (d *decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || len(d.b)-d.off < n {
		d.fail("truncated: need %d bytes at offset %d of %d", n, d.off, len(d.b))
		return nil
	}
	v := d.b[d.off : d.off+n]
	d.off += n
	return v
}

// u8 reads one byte.
func (d *decoder) u8() uint8 {
	v := d.take(1)
	if v == nil {
		return 0
	}
	return v[0]
}

// u16 reads a little-endian uint16.
func (d *decoder) u16() uint16 {
	v := d.take(2)
	if v == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(v)
}

// u32 reads a little-endian uint32.
func (d *decoder) u32() uint32 {
	v := d.take(4)
	if v == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(v)
}

// u64 reads a little-endian uint64.
func (d *decoder) u64() uint64 {
	v := d.take(8)
	if v == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(v)
}

// str16Bytes reads a str16 and returns its byte view (aliasing d.b).
func (d *decoder) str16Bytes() ([]byte, bool) {
	n := d.u16()
	v := d.take(int(n))
	if d.err != nil {
		return nil, false
	}
	return v, true
}

// done checks that the frame was consumed exactly.
func (d *decoder) done() {
	if d.err == nil && d.off != len(d.b) {
		d.fail("%d trailing bytes after payload", len(d.b)-d.off)
	}
}

// internFunc converts a decoded byte view into a string. The serving loop
// passes a per-connection interner so repeated names cost zero
// allocations in steady state; nil falls back to a plain copy.
type internFunc func([]byte) string

// rawString is the nil-interner fallback.
func rawString(b []byte) string { return string(b) }

// DecodeRequest decodes one request frame body (id + kind + payload —
// everything after the uint32 length word) into req, which is reset
// first. String fields are produced through intern (nil means plain
// copies); WordData aliases frame. Every malformed input returns an
// error tagged ErrMalformed; DecodeRequest never panics and never reads
// outside frame.
func DecodeRequest(frame []byte, req *Request, intern internFunc) error {
	req.reset()
	if intern == nil {
		intern = rawString
	}
	if len(frame) < headerLen {
		return malformedf("frame body is %d bytes, want at least %d", len(frame), headerLen)
	}
	d := decoder{b: frame}
	req.ID = d.u64()
	req.Kind = d.u8()
	switch req.Kind {
	case KindPing, KindStats:
		// Empty payload.
	case KindPut:
		name, _ := d.str16Bytes()
		bits := d.u32()
		nwords := d.u32()
		if d.err == nil && (bits == 0 || bits > MaxBits) {
			d.fail("put bits %d out of range [1, %d]", bits, MaxBits)
		}
		if d.err == nil && nwords != 0 && int(nwords) != (int(bits)+63)/64 {
			d.fail("put declares %d words for %d bits, want 0 or %d", nwords, bits, (int(bits)+63)/64)
		}
		data := d.take(int(nwords) * 8)
		if d.err == nil {
			if len(name) == 0 {
				d.fail("put name must not be empty")
			}
			req.Name = intern(name)
			req.Bits = int(bits)
			req.WordData = data
		}
	case KindGet, KindDelete, KindGetVert:
		name, ok := d.str16Bytes()
		if ok && len(name) == 0 {
			d.fail("vector name must not be empty")
		}
		if d.err == nil {
			req.Name = intern(name)
		}
	case KindPutVert:
		name, _ := d.str16Bytes()
		width := d.u8()
		elems := d.u32()
		if d.err == nil && (width == 0 || width > 64) {
			d.fail("put_vert element width %d out of range [1, 64]", width)
		}
		if d.err == nil && elems == 0 {
			d.fail("put_vert needs at least one element")
		}
		data := d.take(int(elems) * 8)
		if d.err == nil {
			if len(name) == 0 {
				d.fail("put_vert name must not be empty")
			} else {
				req.Name = intern(name)
				req.ElemWidth = int(width)
				req.WordData = data
			}
		}
	case KindArith:
		req.Op = d.u8()
		req.TimeoutMS = d.u32()
		dst, _ := d.str16Bytes()
		x, _ := d.str16Bytes()
		y, _ := d.str16Bytes()
		mask, _ := d.str16Bytes()
		if d.err == nil {
			if len(dst) == 0 || len(x) == 0 {
				d.fail("arith needs dst and x")
			} else {
				req.Dst = intern(dst)
				req.X = intern(x)
				if len(y) > 0 {
					req.Y = intern(y)
				}
				if len(mask) > 0 {
					req.Mask = intern(mask)
				}
			}
		}
	case KindOp:
		req.Op = d.u8()
		req.TimeoutMS = d.u32()
		dst, _ := d.str16Bytes()
		x, _ := d.str16Bytes()
		y, _ := d.str16Bytes()
		if d.err == nil {
			if len(dst) == 0 || len(x) == 0 {
				d.fail("op needs dst and x")
			} else {
				req.Dst = intern(dst)
				req.X = intern(x)
				if len(y) > 0 {
					req.Y = intern(y)
				}
			}
		}
	case KindReduce:
		req.Op = d.u8()
		req.TimeoutMS = d.u32()
		dst, _ := d.str16Bytes()
		n := d.u16()
		if d.err == nil && len(dst) == 0 {
			d.fail("reduce needs dst")
		}
		if d.err == nil && n < 2 {
			d.fail("reduce needs at least two srcs, got %d", n)
		}
		for i := 0; d.err == nil && i < int(n); i++ {
			src, ok := d.str16Bytes()
			if ok && len(src) == 0 {
				d.fail("reduce src %d must not be empty", i)
			}
			if d.err == nil {
				req.Srcs = append(req.Srcs, intern(src))
			}
		}
		if d.err == nil {
			req.Dst = intern(dst)
		}
	case KindEval:
		req.TimeoutMS = d.u32()
		dst, _ := d.str16Bytes()
		expr, _ := d.str16Bytes()
		if d.err == nil {
			if len(dst) == 0 || len(expr) == 0 {
				d.fail("eval needs dst and expr")
			} else {
				req.Dst = intern(dst)
				req.Expr = intern(expr)
			}
		}
	case KindQuery:
		req.TimeoutMS = d.u32()
		ns, _ := d.str16Bytes()
		pred, _ := d.str16Bytes()
		mode := d.u8()
		cursor := d.u64()
		limit := d.u32()
		if d.err == nil && mode > QueryPositions {
			d.fail("unknown query mode %d", mode)
		}
		if d.err == nil {
			if len(ns) == 0 || len(pred) == 0 {
				d.fail("query needs namespace and predicate")
			} else {
				req.Name = intern(ns)
				req.Expr = intern(pred)
				req.Mode = mode
				req.Cursor = cursor
				req.Limit = limit
			}
		}
	default:
		d.fail("unknown request kind 0x%02x", req.Kind)
	}
	d.done()
	if d.err != nil {
		req.Srcs = req.Srcs[:0]
		return d.err
	}
	return nil
}

// EncodeRequest appends the complete frame for req to b — the inverse of
// DecodeRequest, used by the round-trip fuzz target and the client.
func EncodeRequest(b []byte, req *Request) []byte {
	switch req.Kind {
	case KindPing:
		return AppendPingRequest(b, req.ID)
	case KindStats:
		return AppendStatsRequest(b, req.ID)
	case KindPut:
		start := len(b)
		b = BeginFrame(b, req.ID, KindPut)
		b = appendStr16(b, req.Name)
		b = appendU32(b, uint32(req.Bits))
		b = appendU32(b, uint32(len(req.WordData)/8))
		b = append(b, req.WordData...)
		return FinishFrame(b, start)
	case KindGet:
		return AppendGetRequest(b, req.ID, req.Name)
	case KindDelete:
		return AppendDeleteRequest(b, req.ID, req.Name)
	case KindGetVert:
		return AppendGetVertRequest(b, req.ID, req.Name)
	case KindPutVert:
		start := len(b)
		b = BeginFrame(b, req.ID, KindPutVert)
		b = appendStr16(b, req.Name)
		b = append(b, byte(req.ElemWidth))
		b = appendU32(b, uint32(len(req.WordData)/8))
		b = append(b, req.WordData...)
		return FinishFrame(b, start)
	case KindArith:
		return AppendArithRequest(b, req.ID, req.Op, req.TimeoutMS, req.Dst, req.X, req.Y, req.Mask)
	case KindOp:
		return AppendOpRequest(b, req.ID, req.Op, req.TimeoutMS, req.Dst, req.X, req.Y)
	case KindReduce:
		return AppendReduceRequest(b, req.ID, req.Op, req.TimeoutMS, req.Dst, req.Srcs)
	case KindEval:
		return AppendEvalRequest(b, req.ID, req.TimeoutMS, req.Dst, req.Expr)
	case KindQuery:
		return AppendQueryRequest(b, req.ID, req.TimeoutMS, req.Name, req.Expr, req.Mode, req.Cursor, req.Limit)
	default:
		start := len(b)
		b = BeginFrame(b, req.ID, req.Kind)
		return FinishFrame(b, start)
	}
}
