package wire

import (
	"encoding/binary"
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

// gatedConn wraps a net.Conn so a test can park the connection's writer
// at a known point: after arm(), the next Write signals blocked and then
// waits for the gate to open. Subsequent writes pass through.
type gatedConn struct {
	net.Conn
	mu      sync.Mutex
	armed   bool
	blocked chan struct{} // closed when the armed write parks
	gate    chan struct{} // close to release the parked write
}

func newGatedConn(nc net.Conn) *gatedConn {
	return &gatedConn{Conn: nc, blocked: make(chan struct{}), gate: make(chan struct{})}
}

func (g *gatedConn) arm() {
	g.mu.Lock()
	g.armed = true
	g.mu.Unlock()
}

func (g *gatedConn) Write(p []byte) (int, error) {
	g.mu.Lock()
	armed := g.armed
	g.armed = false
	g.mu.Unlock()
	if armed {
		close(g.blocked)
		<-g.gate
	}
	return g.Conn.Write(p)
}

// flushLog records OnFlush observations.
type flushLog struct {
	mu    sync.Mutex
	sizes []int
}

func (l *flushLog) record(n int) {
	l.mu.Lock()
	l.sizes = append(l.sizes, n)
	l.mu.Unlock()
}

func (l *flushLog) snapshot() []int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]int(nil), l.sizes...)
}

// waitUntil polls cond until it holds or the deadline passes.
func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestFlushCoalescing pins the flush-on-empty policy deterministically:
// an idle connection flushes a lone response immediately (flush of 1),
// and responses completing while a write is in flight ride the next
// flush together (flush of 8). The first write is parked with a gated
// conn so the remaining eight responses demonstrably queue behind it.
func TestFlushCoalescing(t *testing.T) {
	cn, sn := net.Pipe()
	g := newGatedConn(sn)
	var log flushLog
	cfg := ServerConfig{
		Backend:  &echoBackend{stats: Stats{LatencyNS: 10, RowOps: 1}},
		StatusOf: stubStatusOf,
		OnFlush:  log.record,
	}.withDefaults()
	sc := newServerConn(g, cfg)
	done := make(chan error, 1)
	go func() { done <- sc.serve() }()
	c := NewClient(cn)
	defer func() {
		_ = c.Close()
		_ = sn.Close()
		<-done
	}()

	// Park the first response's write mid-flush.
	g.arm()
	results := make(chan error, 9)
	op := func() {
		_, err := c.Op(BitAnd, 0, "dst", "x", "y")
		results <- err
	}
	go op()
	select {
	case <-g.blocked:
	case <-time.After(5 * time.Second):
		t.Fatal("first flush never reached the connection write")
	}
	if got := log.snapshot(); len(got) != 0 {
		t.Fatalf("OnFlush fired before the write completed: %v", got)
	}

	// Eight more requests complete while the flusher is parked: they must
	// queue, not write.
	for i := 0; i < 8; i++ {
		go op()
	}
	waitUntil(t, "8 responses queued behind the in-flight flush", func() bool {
		return sc.pendingLen() == 8
	})

	// Release the parked write: the flusher finishes the 1-frame flush,
	// then drains all 8 queued frames in a single writev.
	close(g.gate)
	for i := 0; i < 9; i++ {
		if err := <-results; err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
	}
	waitUntil(t, "second flush recorded", func() bool { return len(log.snapshot()) >= 2 })
	if got := log.snapshot(); len(got) != 2 || got[0] != 1 || got[1] != 8 {
		t.Fatalf("flush sizes = %v, want [1 8]", got)
	}
}

// TestWriteErrorEndsServe is the regression test for the formerly
// swallowed write error: a client that hangs up mid-stream (requests
// admitted, responses undeliverable) must end ServeConn promptly with
// the write error, with every queued response dropped rather than
// encoded into the dead socket forever.
func TestWriteErrorEndsServe(t *testing.T) {
	cn, sn := net.Pipe()
	cfg := ServerConfig{
		Backend:  &echoBackend{stats: Stats{LatencyNS: 10, RowOps: 1}},
		StatusOf: stubStatusOf,
	}.withDefaults()
	sc := newServerConn(sn, cfg)
	done := make(chan error, 1)
	go func() { done <- sc.serve() }()

	// Deliver four requests, then hang up without reading any response.
	// net.Pipe is unbuffered, so the flusher's first write parks until the
	// close fails it.
	var frame []byte
	for id := uint64(1); id <= 4; id++ {
		frame = AppendOpRequest(frame[:0], id, BitAnd, 0, "dst", "x", "y")
		if _, err := cn.Write(frame); err != nil {
			t.Fatalf("write request %d: %v", id, err)
		}
	}
	_ = cn.Close()

	select {
	case err := <-done:
		if err == nil {
			t.Fatal("ServeConn returned nil after a mid-stream hangup, want write error")
		}
		if !errors.Is(err, io.ErrClosedPipe) {
			t.Fatalf("ServeConn returned %v, want io.ErrClosedPipe", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ServeConn did not end after the peer hung up")
	}
	if n := sc.pendingLen(); n != 0 {
		t.Fatalf("%d frames left in the flush queue after teardown, want 0", n)
	}
}

// TestServeConnDrainsOnCleanClose pins the teardown contract the server's
// graceful drain depends on: when the read side ends cleanly with
// responses still queued (or in flight), ServeConn must flush every one
// of them un-truncated before returning. Uses a real TCP pair so the
// peer can half-close its write side.
func TestServeConnDrainsOnCleanClose(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	const reqs = 32
	cfg := ServerConfig{
		Backend:  &echoBackend{stats: Stats{LatencyNS: 10, RowOps: 1}},
		StatusOf: stubStatusOf,
	}
	done := make(chan error, 1)
	go func() {
		sn, aerr := ln.Accept()
		if aerr != nil {
			done <- aerr
			return
		}
		defer sn.Close()
		done <- ServeConn(sn, cfg)
	}()
	nc, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()

	var frame []byte
	for id := uint64(1); id <= reqs; id++ {
		frame = AppendOpRequest(frame[:0], id, BitAnd, 0, "dst", "x", "y")
		if _, err := nc.Write(frame); err != nil {
			t.Fatalf("write request %d: %v", id, err)
		}
	}
	// Half-close: the server sees EOF with work still in its pipeline.
	if err := nc.(*net.TCPConn).CloseWrite(); err != nil {
		t.Fatal(err)
	}

	// Every admitted request must still get its response.
	seen := make(map[uint64]bool)
	var lenWord [frameLenSize]byte
	for i := 0; i < reqs; i++ {
		if _, err := io.ReadFull(nc, lenWord[:]); err != nil {
			t.Fatalf("response %d: %v (got %d of %d)", i, err, len(seen), reqs)
		}
		body := make([]byte, binary.LittleEndian.Uint32(lenWord[:]))
		if _, err := io.ReadFull(nc, body); err != nil {
			t.Fatalf("response %d body: %v", i, err)
		}
		id := binary.LittleEndian.Uint64(body)
		if st := body[8]; st != StatusOK {
			t.Fatalf("response for id %d: status %d, want OK", id, st)
		}
		if seen[id] {
			t.Fatalf("duplicate response for id %d", id)
		}
		seen[id] = true
	}
	if err := <-done; err != nil {
		t.Fatalf("ServeConn: %v, want nil on clean close", err)
	}
}

// TestDisableCoalescing checks the escape hatch still writes one frame
// per flush and reports each to OnFlush.
func TestDisableCoalescing(t *testing.T) {
	var log flushLog
	c := startStub(t, ServerConfig{DisableCoalescing: true, OnFlush: log.record})
	const reqs = 16
	for i := 0; i < reqs; i++ {
		if _, err := c.Op(BitAnd, 0, "dst", "x", "y"); err != nil {
			t.Fatal(err)
		}
	}
	// OnFlush fires after the write returns, so the last observation can
	// trail the client's receipt of the response by an instant.
	waitUntil(t, "all flushes recorded", func() bool { return len(log.snapshot()) >= reqs })
	sizes := log.snapshot()
	if len(sizes) != reqs {
		t.Fatalf("%d flushes, want %d", len(sizes), reqs)
	}
	for i, n := range sizes {
		if n != 1 {
			t.Fatalf("flush %d carried %d frames, want 1 with coalescing disabled", i, n)
		}
	}
}

// TestClientWriteCoalescing checks the client-side writer accounts for
// every request frame and that concurrent callers can share flushes.
func TestClientWriteCoalescing(t *testing.T) {
	c := startStub(t, ServerConfig{})
	const (
		goroutines = 16
		perG       = 8
	)
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*perG)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				if _, err := c.Op(BitAnd, 0, "dst", "x", "y"); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// The writer bumps its counters after the writev returns, so they can
	// trail the last response by an instant.
	waitUntil(t, "all frames counted", func() bool {
		_, frames := c.WriteStats()
		return frames >= goroutines*perG
	})
	flushes, frames := c.WriteStats()
	if frames != goroutines*perG {
		t.Fatalf("client wrote %d frames, want %d", frames, goroutines*perG)
	}
	if flushes == 0 || flushes > frames {
		t.Fatalf("client flushes = %d, want 1..%d", flushes, frames)
	}
}

// TestClientUsableAfterWriteError checks a client whose writer failed
// reports errors instead of hanging: calls made after the connection
// drops fail fast.
func TestClientUsableAfterWriteError(t *testing.T) {
	cn, sn := net.Pipe()
	c := NewClient(cn)
	_ = sn.Close() // server vanishes before any call
	if err := c.Ping(); err == nil {
		t.Fatal("Ping succeeded against a closed peer")
	}
	if err := c.Ping(); err == nil {
		t.Fatal("second Ping succeeded against a closed peer")
	}
	_ = c.Close()
}
