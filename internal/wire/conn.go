package wire

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
)

// Backend executes one decoded request. On success it appends the
// per-opcode OK payload to resp and returns nil; on failure it returns an
// error, which the serving loop classifies into a wire status through the
// connection's StatusOf and renders as an error payload. The request (and
// the frame buffer its strings and WordData alias) is only valid for the
// duration of the call.
type Backend interface {
	Handle(ctx context.Context, req *Request, resp *Response) error
}

// StatusFunc classifies a Backend error into a response status code and
// a retry-after hint in milliseconds (zero for none).
type StatusFunc func(error) (code uint8, retryAfterMS uint32)

// defaultStatusOf is the classifier used when ServerConfig.StatusOf is
// nil: malformed-tagged errors are the client's fault, everything else a
// server fault.
func defaultStatusOf(err error) (uint8, uint32) {
	if errors.Is(err, ErrMalformed) {
		return StatusBadRequest, 0
	}
	return StatusInternal, 0
}

// ServerConfig parameterizes ServeConn. Zero values select documented
// defaults.
type ServerConfig struct {
	// Backend executes decoded requests. Required.
	Backend Backend
	// StatusOf classifies Backend errors into wire statuses. Default:
	// ErrMalformed → StatusBadRequest, anything else → StatusInternal.
	StatusOf StatusFunc
	// MaxFrame bounds accepted frame bodies. Default DefaultMaxFrame.
	MaxFrame int
	// Workers is the number of concurrent in-flight requests one
	// connection executes — the multiplexing width. Decoded requests are
	// handed to a fixed worker pool, so many requests pipeline through
	// the batcher while the reader keeps draining frames. Default 16.
	Workers int
	// BaseContext is the root context requests execute under; closing the
	// connection does not cancel it (the batcher settles admitted work).
	// Default context.Background().
	BaseContext context.Context
	// MaxInterned bounds the per-connection name-intern cache that makes
	// repeated vector names allocation-free; beyond it, new names fall
	// back to plain copies. Default 4096.
	MaxInterned int
}

// withDefaults normalizes cfg.
func (c ServerConfig) withDefaults() ServerConfig {
	if c.StatusOf == nil {
		c.StatusOf = defaultStatusOf
	}
	if c.MaxFrame <= 0 {
		c.MaxFrame = DefaultMaxFrame
	}
	if c.Workers <= 0 {
		c.Workers = 16
	}
	if c.BaseContext == nil {
		c.BaseContext = context.Background()
	}
	if c.MaxInterned <= 0 {
		c.MaxInterned = 4096
	}
	return c
}

// Response accumulates one response frame. Backends append their OK
// payload through the Append methods; the serving loop owns the header
// and the final write.
type Response struct {
	b []byte
}

// AppendU8 appends one byte to the payload.
func (r *Response) AppendU8(v uint8) { r.b = append(r.b, v) }

// AppendU32 appends a little-endian uint32 to the payload.
func (r *Response) AppendU32(v uint32) { r.b = appendU32(r.b, v) }

// AppendU64 appends a little-endian uint64 to the payload.
func (r *Response) AppendU64(v uint64) { r.b = appendU64(r.b, v) }

// AppendStats appends the 48-byte stats block to the payload.
func (r *Response) AppendStats(st Stats) { r.b = AppendStats(r.b, st) }

// AppendWords appends a word payload (u32 count + raw LE words).
func (r *Response) AppendWords(words []uint64) { r.b = AppendWords(r.b, words) }

// AppendBytes appends raw bytes to the payload.
func (r *Response) AppendBytes(p []byte) { r.b = append(r.b, p...) }

// Buffer pools shared by every connection (server and client side): frame
// read buffers, response build buffers, and decoded-request carriers. All
// three cycle through the steady-state loop without allocating.
var (
	bufPool = sync.Pool{New: func() any {
		b := make([]byte, 0, 4096)
		return &b
	}}
	connReqPool = sync.Pool{New: func() any { return new(connReq) }}
)

// getBuf fetches a pooled buffer with at least n capacity, length n.
func getBuf(n int) *[]byte {
	bp := bufPool.Get().(*[]byte)
	if cap(*bp) < n {
		*bp = make([]byte, n)
	}
	*bp = (*bp)[:n]
	return bp
}

// putBuf recycles a pooled buffer.
func putBuf(bp *[]byte) {
	*bp = (*bp)[:0]
	bufPool.Put(bp)
}

// connReq carries one decoded request and the frame buffer it aliases
// from the reader goroutine to a worker. The response builder lives here
// too (rather than as a local in handle) so that taking its address for
// the Backend.Handle interface call never forces a per-request heap
// allocation — the whole carrier is pooled.
type connReq struct {
	req  Request
	resp Response
	buf  *[]byte
}

// serverConn is one connection's serving state.
type serverConn struct {
	nc   net.Conn
	br   *bufio.Reader
	cfg  ServerConfig
	wmu  sync.Mutex // serializes response writes
	work chan *connReq
	wg   sync.WaitGroup

	// names interns decoded strings so the steady-state loop does not
	// allocate per request. Reader-goroutine-only; bounded by MaxInterned.
	names map[string]string
}

// ServeConn serves one elpwire connection until the peer closes it, a
// read fails, or a protocol-level framing violation (oversize or
// undersize frame) makes the stream untrustworthy. It returns nil on a
// clean peer close (EOF between frames). Responses are written as
// requests complete — out of order when the Workers pool executes several
// concurrently — matched to requests by their echoed id.
func ServeConn(nc net.Conn, cfg ServerConfig) error {
	cfg = cfg.withDefaults()
	if cfg.Backend == nil {
		return errors.New("wire: ServerConfig.Backend is required")
	}
	c := &serverConn{
		nc:    nc,
		br:    bufio.NewReaderSize(nc, 64<<10),
		cfg:   cfg,
		work:  make(chan *connReq, cfg.Workers),
		names: make(map[string]string),
	}
	for i := 0; i < cfg.Workers; i++ {
		c.wg.Add(1)
		go c.worker()
	}
	err := c.readLoop()
	close(c.work)
	c.wg.Wait()
	return err
}

// intern returns the canonical string for b, allocation-free once a name
// has been seen on this connection.
func (c *serverConn) intern(b []byte) string {
	if s, ok := c.names[string(b)]; ok {
		return s
	}
	s := string(b)
	if len(c.names) < c.cfg.MaxInterned {
		c.names[s] = s
	}
	return s
}

// readLoop reads and decodes frames, handing each to the worker pool.
// Decode failures answer StatusBadRequest on the spot (the frame is
// length-delimited, so the stream stays in sync); framing failures
// (short length word, oversize declaration) end the connection.
func (c *serverConn) readLoop() error {
	var lenWord [frameLenSize]byte
	for {
		if _, err := io.ReadFull(c.br, lenWord[:]); err != nil {
			if err == io.EOF {
				return nil // clean close between frames
			}
			return err
		}
		n := int(binary.LittleEndian.Uint32(lenWord[:]))
		if n < headerLen {
			return fmt.Errorf("%w: frame body %d bytes, want at least %d", ErrMalformed, n, headerLen)
		}
		if n > c.cfg.MaxFrame {
			return fmt.Errorf("%w: %d bytes (limit %d)", ErrFrameTooLarge, n, c.cfg.MaxFrame)
		}
		bp := getBuf(n)
		if _, err := io.ReadFull(c.br, *bp); err != nil {
			putBuf(bp)
			return fmt.Errorf("wire: truncated frame: %w", err)
		}
		cr := connReqPool.Get().(*connReq)
		cr.buf = bp
		if err := DecodeRequest(*bp, &cr.req, c.intern); err != nil {
			// The id decodes first whenever the body is ≥ 9 bytes, which it
			// is here, so the error can be correlated by the client.
			c.writeError(cr.req.ID, err)
			c.release(cr)
			continue
		}
		c.work <- cr
	}
}

// worker executes decoded requests until the work channel closes.
func (c *serverConn) worker() {
	defer c.wg.Done()
	for cr := range c.work {
		c.handle(cr)
		c.release(cr)
	}
}

// release recycles a request carrier and its frame buffer.
func (c *serverConn) release(cr *connReq) {
	putBuf(cr.buf)
	cr.buf = nil
	cr.req.reset()
	connReqPool.Put(cr)
}

// handle runs one request through the backend and writes its response.
func (c *serverConn) handle(cr *connReq) {
	rp := getBuf(0)
	cr.resp.b = BeginFrame(*rp, cr.req.ID, StatusOK)
	err := c.cfg.Backend.Handle(c.cfg.BaseContext, &cr.req, &cr.resp)
	if err != nil {
		code, retry := c.cfg.StatusOf(err)
		cr.resp.b = BeginFrame(cr.resp.b[:0], cr.req.ID, code)
		cr.resp.b = AppendErrorPayload(cr.resp.b, retry, err.Error())
	}
	cr.resp.b = FinishFrame(cr.resp.b, 0)
	c.wmu.Lock()
	_, werr := c.nc.Write(cr.resp.b)
	c.wmu.Unlock()
	*rp = cr.resp.b[:0]
	putBuf(rp)
	cr.resp.b = nil
	_ = werr // a failed write surfaces as the reader's next error
}

// writeError answers a request that failed before reaching the backend.
func (c *serverConn) writeError(id uint64, err error) {
	rp := getBuf(0)
	code, retry := c.cfg.StatusOf(err)
	b := BeginFrame(*rp, id, code)
	b = AppendErrorPayload(b, retry, err.Error())
	b = FinishFrame(b, 0)
	c.wmu.Lock()
	_, _ = c.nc.Write(b)
	c.wmu.Unlock()
	*rp = b[:0]
	putBuf(rp)
}
