package wire

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"runtime"
	"sync"
)

// Backend executes one decoded request. On success it appends the
// per-opcode OK payload to resp and returns nil; on failure it returns an
// error, which the serving loop classifies into a wire status through the
// connection's StatusOf and renders as an error payload. The request (and
// the frame buffer its strings and WordData alias) is only valid for the
// duration of the call.
type Backend interface {
	Handle(ctx context.Context, req *Request, resp *Response) error
}

// StatusFunc classifies a Backend error into a response status code and
// a retry-after hint in milliseconds (zero for none).
type StatusFunc func(error) (code uint8, retryAfterMS uint32)

// defaultStatusOf is the classifier used when ServerConfig.StatusOf is
// nil: malformed-tagged errors are the client's fault, everything else a
// server fault.
func defaultStatusOf(err error) (uint8, uint32) {
	if errors.Is(err, ErrMalformed) {
		return StatusBadRequest, 0
	}
	return StatusInternal, 0
}

// ServerConfig parameterizes ServeConn. Zero values select documented
// defaults.
type ServerConfig struct {
	// Backend executes decoded requests. Required.
	Backend Backend
	// StatusOf classifies Backend errors into wire statuses. Default:
	// ErrMalformed → StatusBadRequest, anything else → StatusInternal.
	StatusOf StatusFunc
	// MaxFrame bounds accepted frame bodies. Default DefaultMaxFrame.
	MaxFrame int
	// Workers is the number of concurrent in-flight requests one
	// connection executes — the multiplexing width. Decoded requests are
	// handed to a fixed worker pool, so many requests pipeline through
	// the batcher while the reader keeps draining frames. Default 16.
	Workers int
	// BaseContext is the root context requests execute under; closing the
	// connection does not cancel it (the batcher settles admitted work).
	// Default context.Background().
	BaseContext context.Context
	// MaxInterned bounds the per-connection name-intern cache that makes
	// repeated vector names allocation-free; beyond it, new names fall
	// back to plain copies. Default 4096.
	MaxInterned int
	// OnFlush, when set, observes every write-path flush with the number
	// of response frames it carried. Under load the flusher coalesces
	// many frames into one writev, so frames-per-flush > 1 measures how
	// well syscalls are being amortized. Called from the flusher
	// goroutine after each successful flush; it must be fast and must not
	// block.
	OnFlush func(frames int)
	// DisableCoalescing reverts to one mutex-guarded Write per response
	// (the pre-coalescer behavior, kept as a benchmarking escape hatch).
	// OnFlush still fires with frames=1 per write.
	DisableCoalescing bool
}

// withDefaults normalizes cfg.
func (c ServerConfig) withDefaults() ServerConfig {
	if c.StatusOf == nil {
		c.StatusOf = defaultStatusOf
	}
	if c.MaxFrame <= 0 {
		c.MaxFrame = DefaultMaxFrame
	}
	if c.Workers <= 0 {
		c.Workers = 16
	}
	if c.BaseContext == nil {
		c.BaseContext = context.Background()
	}
	if c.MaxInterned <= 0 {
		c.MaxInterned = 4096
	}
	return c
}

// Response accumulates one response frame. Backends append their OK
// payload through the Append methods; the serving loop owns the header
// and the final write.
type Response struct {
	b []byte
}

// AppendU8 appends one byte to the payload.
func (r *Response) AppendU8(v uint8) { r.b = append(r.b, v) }

// AppendU32 appends a little-endian uint32 to the payload.
func (r *Response) AppendU32(v uint32) { r.b = appendU32(r.b, v) }

// AppendU64 appends a little-endian uint64 to the payload.
func (r *Response) AppendU64(v uint64) { r.b = appendU64(r.b, v) }

// AppendStats appends the 48-byte stats block to the payload.
func (r *Response) AppendStats(st Stats) { r.b = AppendStats(r.b, st) }

// AppendWords appends a word payload (u32 count + raw LE words).
func (r *Response) AppendWords(words []uint64) { r.b = AppendWords(r.b, words) }

// AppendBytes appends raw bytes to the payload.
func (r *Response) AppendBytes(p []byte) { r.b = append(r.b, p...) }

// Buffer pools shared by every connection (server and client side): frame
// read buffers, response build buffers, and decoded-request carriers. All
// three cycle through the steady-state loop without allocating.
var (
	bufPool = sync.Pool{New: func() any {
		b := make([]byte, 0, 4096)
		return &b
	}}
	connReqPool = sync.Pool{New: func() any { return new(connReq) }}
)

// getBuf fetches a pooled buffer with at least n capacity, length n.
func getBuf(n int) *[]byte {
	bp := bufPool.Get().(*[]byte)
	if cap(*bp) < n {
		*bp = make([]byte, n)
	}
	*bp = (*bp)[:n]
	return bp
}

// putBuf recycles a pooled buffer.
func putBuf(bp *[]byte) {
	*bp = (*bp)[:0]
	bufPool.Put(bp)
}

// connReq carries one decoded request and the frame buffer it aliases
// from the reader goroutine to a worker. The response builder lives here
// too (rather than as a local in handle) so that taking its address for
// the Backend.Handle interface call never forces a per-request heap
// allocation — the whole carrier is pooled.
type connReq struct {
	req  Request
	resp Response
	buf  *[]byte
}

// serverConn is one connection's serving state.
type serverConn struct {
	nc   net.Conn
	br   *bufio.Reader
	cfg  ServerConfig
	wmu  sync.Mutex // serializes direct writes (DisableCoalescing only)
	work chan *connReq
	wg   sync.WaitGroup

	// Response coalescer. Workers enqueue completed frames under fmu;
	// the flusher goroutine drains the whole queue per wakeup and writes
	// it in one writev. fmu also guards werr (the connection's first
	// write error — once set, frames are dropped instead of queued into a
	// dead socket) and closing (set at teardown to let the flusher park
	// out after its final drain).
	fmu         sync.Mutex
	fcond       *sync.Cond
	pending     []*[]byte
	werr        error
	closing     bool
	iov         net.Buffers   // flusher-only writev scratch, reused across flushes
	flusherDone chan struct{} // nil when DisableCoalescing

	// names interns decoded strings so the steady-state loop does not
	// allocate per request. Reader-goroutine-only; bounded by MaxInterned.
	names map[string]string
}

// ServeConn serves one elpwire connection until the peer closes it, a
// read fails, a write fails, or a protocol-level framing violation
// (oversize or undersize frame) makes the stream untrustworthy. It
// returns nil on a clean peer close (EOF between frames) with every
// queued response flushed. Responses are written as requests complete —
// out of order when the Workers pool executes several concurrently —
// matched to requests by their echoed id.
func ServeConn(nc net.Conn, cfg ServerConfig) error {
	cfg = cfg.withDefaults()
	if cfg.Backend == nil {
		return errors.New("wire: ServerConfig.Backend is required")
	}
	return newServerConn(nc, cfg).serve()
}

// newServerConn builds one connection's serving state and starts its
// worker pool and (unless coalescing is disabled) flusher goroutine.
// cfg must already be normalized and carry a Backend.
func newServerConn(nc net.Conn, cfg ServerConfig) *serverConn {
	c := &serverConn{
		nc:    nc,
		br:    bufio.NewReaderSize(nc, 64<<10),
		cfg:   cfg,
		work:  make(chan *connReq, cfg.Workers),
		names: make(map[string]string),
	}
	c.fcond = sync.NewCond(&c.fmu)
	if !cfg.DisableCoalescing {
		c.flusherDone = make(chan struct{})
		go c.flusher()
	}
	for i := 0; i < cfg.Workers; i++ {
		c.wg.Add(1)
		go c.worker()
	}
	return c
}

// serve runs the read loop, then unwinds: workers drain the in-flight
// requests, the flusher writes out every response they queued, and only
// then does the connection report its terminal error. A write error
// takes precedence over the read-side error it usually causes (closing
// the socket under the reader).
func (c *serverConn) serve() error {
	err := c.readLoop()
	close(c.work)
	c.wg.Wait()
	if c.flusherDone != nil {
		c.fmu.Lock()
		c.closing = true
		c.fmu.Unlock()
		c.fcond.Signal()
		<-c.flusherDone
	}
	c.fmu.Lock()
	werr := c.werr
	c.fmu.Unlock()
	if werr != nil {
		return werr
	}
	return err
}

// intern returns the canonical string for b, allocation-free once a name
// has been seen on this connection.
func (c *serverConn) intern(b []byte) string {
	if s, ok := c.names[string(b)]; ok {
		return s
	}
	s := string(b)
	if len(c.names) < c.cfg.MaxInterned {
		c.names[s] = s
	}
	return s
}

// readLoop reads and decodes frames, handing each to the worker pool.
// Decode failures answer StatusBadRequest on the spot (the frame is
// length-delimited, so the stream stays in sync); framing failures
// (short length word, oversize declaration) end the connection.
func (c *serverConn) readLoop() error {
	var lenWord [frameLenSize]byte
	for {
		if _, err := io.ReadFull(c.br, lenWord[:]); err != nil {
			if err == io.EOF {
				return nil // clean close between frames
			}
			return err
		}
		n := int(binary.LittleEndian.Uint32(lenWord[:]))
		if n < headerLen {
			return fmt.Errorf("%w: frame body %d bytes, want at least %d", ErrMalformed, n, headerLen)
		}
		if n > c.cfg.MaxFrame {
			return fmt.Errorf("%w: %d bytes (limit %d)", ErrFrameTooLarge, n, c.cfg.MaxFrame)
		}
		bp := getBuf(n)
		if _, err := io.ReadFull(c.br, *bp); err != nil {
			putBuf(bp)
			return fmt.Errorf("wire: truncated frame: %w", err)
		}
		cr := connReqPool.Get().(*connReq)
		cr.buf = bp
		if err := DecodeRequest(*bp, &cr.req, c.intern); err != nil {
			// The id decodes first whenever the body is ≥ 9 bytes, which it
			// is here, so the error can be correlated by the client.
			c.writeError(cr.req.ID, err)
			c.release(cr)
			continue
		}
		c.work <- cr
	}
}

// worker executes decoded requests until the work channel closes.
func (c *serverConn) worker() {
	defer c.wg.Done()
	for cr := range c.work {
		c.handle(cr)
		c.release(cr)
	}
}

// release recycles a request carrier and its frame buffer.
func (c *serverConn) release(cr *connReq) {
	putBuf(cr.buf)
	cr.buf = nil
	cr.req.reset()
	connReqPool.Put(cr)
}

// handle runs one request through the backend and hands its response to
// the write path.
func (c *serverConn) handle(cr *connReq) {
	rp := getBuf(0)
	cr.resp.b = BeginFrame(*rp, cr.req.ID, StatusOK)
	err := c.cfg.Backend.Handle(c.cfg.BaseContext, &cr.req, &cr.resp)
	if err != nil {
		code, retry := c.cfg.StatusOf(err)
		cr.resp.b = BeginFrame(cr.resp.b[:0], cr.req.ID, code)
		cr.resp.b = AppendErrorPayload(cr.resp.b, retry, err.Error())
	}
	cr.resp.b = FinishFrame(cr.resp.b, 0)
	*rp = cr.resp.b // the frame may have outgrown the pooled buffer
	cr.resp.b = nil
	c.send(rp)
}

// writeError answers a request that failed before reaching the backend.
func (c *serverConn) writeError(id uint64, err error) {
	rp := getBuf(0)
	code, retry := c.cfg.StatusOf(err)
	b := BeginFrame(*rp, id, code)
	b = AppendErrorPayload(b, retry, err.Error())
	b = FinishFrame(b, 0)
	*rp = b
	c.send(rp)
}

// send hands one completed response frame to the write path, taking
// ownership of the pooled buffer. With coalescing it appends to the
// pending queue and wakes the flusher; with DisableCoalescing it writes
// directly under the write lock. Either way, once the connection's
// writer has failed the frame is dropped on the spot — workers stop
// paying syscalls (or queue growth) for a dead peer.
func (c *serverConn) send(rp *[]byte) {
	if c.flusherDone == nil {
		c.fmu.Lock()
		failed := c.werr != nil
		c.fmu.Unlock()
		if !failed {
			c.wmu.Lock()
			_, err := c.nc.Write(*rp)
			c.wmu.Unlock()
			if err != nil {
				c.fail(err)
			} else if c.cfg.OnFlush != nil {
				c.cfg.OnFlush(1)
			}
		}
		putBuf(rp)
		return
	}
	c.fmu.Lock()
	if c.werr != nil {
		c.fmu.Unlock()
		putBuf(rp)
		return
	}
	c.pending = append(c.pending, rp)
	c.fmu.Unlock()
	c.fcond.Signal()
}

// fail records the connection's first write error and closes the socket,
// which unblocks the read loop so the whole connection unwinds promptly.
func (c *serverConn) fail(err error) {
	c.fmu.Lock()
	first := c.werr == nil
	if first {
		c.werr = err
	}
	c.fmu.Unlock()
	if first {
		_ = c.nc.Close()
	}
}

// pendingLen reports the number of queued-but-unflushed response frames.
func (c *serverConn) pendingLen() int {
	c.fmu.Lock()
	defer c.fmu.Unlock()
	return len(c.pending)
}

// flusher is the connection's single writer: it parks while the pending
// queue is empty, and on each wakeup swaps the whole queue out and
// writes it as one writev ("flush-on-empty"). An idle connection
// therefore flushes every response immediately — single-request latency
// is one wakeup away from the old direct write — while under load
// responses that complete during an in-flight writev pile up and ride
// the next one, amortizing syscalls automatically. Runs until serve
// sets closing and the queue is empty, so teardown drains every
// admitted response before the connection reports its terminal state.
func (c *serverConn) flusher() {
	defer close(c.flusherDone)
	var queue []*[]byte
	for {
		c.fmu.Lock()
		for len(c.pending) == 0 && !c.closing {
			c.fcond.Wait()
		}
		if len(c.pending) == 0 {
			c.fmu.Unlock()
			return
		}
		c.fmu.Unlock()
		// Signal parks the flusher in the scheduler's run-next slot, so
		// without this yield it would wake after the first enqueue and
		// write a 1-frame batch while the sibling workers woken by the
		// same micro-batch are still queued behind it. One Gosched lets
		// them append their frames first (the loopy-writer trick), at the
		// cost of a sub-microsecond yield on the idle path.
		runtime.Gosched()
		c.fmu.Lock()
		queue, c.pending = c.pending, queue[:0]
		failed := c.werr != nil
		c.fmu.Unlock()
		if !failed {
			if err := c.writeBatch(queue); err != nil {
				c.fail(err)
			} else if c.cfg.OnFlush != nil {
				c.cfg.OnFlush(len(queue))
			}
		}
		for i, bp := range queue {
			putBuf(bp)
			queue[i] = nil
		}
	}
}

// writeBatch writes every frame in queue with one syscall: a plain
// Write for a single frame, a net.Buffers writev otherwise (net.Buffers
// falls back to sequential writes on connections without vectored I/O,
// such as net.Pipe). The iovec scratch is reused across flushes so the
// steady-state path does not allocate.
func (c *serverConn) writeBatch(queue []*[]byte) error {
	if len(queue) == 1 {
		_, err := c.nc.Write(*queue[0])
		return err
	}
	c.iov = c.iov[:0]
	for _, bp := range queue {
		c.iov = append(c.iov, *bp)
	}
	// WriteTo consumes and mutates the slice it is called on, so hand it
	// a view; the backing array is re-filled from scratch next flush.
	v := c.iov
	_, err := v.WriteTo(c.nc)
	return err
}
