// Package wire is elpwire: the length-prefixed binary serving protocol
// for elpd's hot endpoints (op/reduce/eval/arith plus plain and vertical
// vector PUT/GET), carrying bit payloads as raw little-endian 64-bit
// words instead of JSON-encoded base64 text. It exists because BENCH_shards.json showed the modeled PIM
// hardware scaling 3.98× at 4 shards while achieved wall-clock QPS stayed
// flat: the HTTP/1+JSON path (text codecs, per-request allocations, one
// request in flight per connection) had become the bottleneck, not the
// accelerator. elpwire is the thin control path the bulk-bitwise-PIM
// papers assume — persistent connections, request-ID multiplexing so one
// connection pipelines many in-flight requests, and pooled buffers so the
// steady-state read→decode→dispatch→encode→write loop allocates nothing.
//
// # Frame layout
//
// Every message — request or response — is one frame:
//
//	offset 0  uint32 LE  n: byte length of the rest of the frame (≥ 9)
//	offset 4  uint64 LE  request id (echoed verbatim in the response)
//	offset 12 uint8      kind (request opcode) / status (response code)
//	offset 13 payload    n-9 bytes, layout per kind (see request docs)
//
// Integers are little-endian. Strings are a uint16 LE length followed by
// that many bytes of UTF-8. Bit payloads are a uint32 LE word count
// followed by count raw little-endian uint64 words (bit i of the vector
// is bit i%64 of word i/64 — the accelerator's native layout, so neither
// side re-packs anything).
//
// The package is pure protocol: it knows nothing about the store or the
// accelerator. The serving side (ServeConn) executes decoded requests
// through a Backend and maps its errors onto response statuses through a
// caller-supplied classifier; internal/server provides both over the same
// store, micro-batchers, admission queues and drain semantics as the
// HTTP/JSON path, and pins the two paths bit-for-bit equal in its
// differential tests.
package wire

import (
	"errors"
	"fmt"
)

// Request opcodes (the kind byte of a request frame), with their payload
// layouts. String fields are str16 (uint16 LE length + bytes); words are
// u32 LE count + count raw LE uint64s.
const (
	// KindPing is a no-op round trip: empty payload, empty OK response.
	KindPing uint8 = 0x01
	// KindPut stores a vector: name str16, bits u32, words. A zero word
	// count stores an all-zero vector of the given length; otherwise the
	// count must be exactly ceil(bits/64) and bits set beyond the length
	// in the final word are rejected. OK response: bits u32.
	KindPut uint8 = 0x02
	// KindGet fetches a vector: name str16. OK response: bits u32,
	// popcount u64, words.
	KindGet uint8 = 0x03
	// KindDelete removes a vector: name str16. OK response: empty.
	KindDelete uint8 = 0x04
	// KindOp executes dst = op(x, y): op u8, timeout_ms u32, dst str16,
	// x str16, y str16 (empty for the unary not/copy). OK response: Stats.
	KindOp uint8 = 0x05
	// KindReduce executes dst = srcs[0] op srcs[1] op ...: op u8,
	// timeout_ms u32, dst str16, count u16, count × str16. OK response:
	// Stats.
	KindReduce uint8 = 0x06
	// KindEval evaluates a boolean expression over stored vectors:
	// timeout_ms u32, dst str16, expr str16. OK response: Stats, bits u32.
	KindEval uint8 = 0x07
	// KindStats fetches the serving-layer stats: empty payload. OK
	// response: the UTF-8 JSON encoding of the HTTP /v1/stats payload,
	// byte-for-byte the same marshaling — so the two paths cannot drift.
	KindStats uint8 = 0x08
	// KindArith executes a vertical arithmetic operation dst = op(x, y)
	// over stored vertical (bit-sliced) vectors: op u8 (an Arith* code),
	// timeout_ms u32, dst str16, x str16, y str16 (empty for the unary
	// popcount), mask str16 (empty for unmasked operations). OK response:
	// Stats, elem_width u8, elems u32.
	KindArith uint8 = 0x09
	// KindPutVert stores a vertical vector: name str16, elem_width u8
	// (1..64), elems u32 (≥ 1), elems raw LE uint64 element values, each
	// < 2^elem_width. OK response: elems u32.
	KindPutVert uint8 = 0x0A
	// KindGetVert fetches a vertical vector's elements: name str16. OK
	// response: elem_width u8, elems u32, elems raw LE uint64 values.
	KindGetVert uint8 = 0x0B
	// KindQuery evaluates a boolean predicate over the bitmap indices of a
	// namespace: timeout_ms u32, namespace str16, predicate str16, mode u8
	// (a Query* code), cursor u64, limit u32 (positions mode only; zero
	// asks for the server default page size). OK response: Stats, bits u32
	// (the universe width), count u64 (the match cardinality), then per
	// mode — QueryCount: nothing further; QueryBits: the match bitvector
	// as words; QueryPositions: next_cursor u64 (zero when the page
	// exhausted the matches) followed by the page of set-bit positions as
	// words.
	KindQuery uint8 = 0x0C
)

// Query result modes carried in the mode byte of KindQuery requests. Like
// the Bit* codes, the values are a stable protocol contract, pinned to the
// JSON path's mode strings by a test in internal/server.
const (
	// QueryCount returns only the match cardinality.
	QueryCount uint8 = 0
	// QueryBits returns the whole match bitvector.
	QueryBits uint8 = 1
	// QueryPositions returns a cursor/limit page of set-bit positions.
	QueryPositions uint8 = 2
)

// Response status codes (the kind byte of a response frame). StatusOK
// responses carry the per-opcode payload documented on the Kind
// constants; every other status is an error whose payload is
// retry_after_ms u32 followed by a human-readable message str16. The
// codes mirror the HTTP/JSON path's status classes one-for-one —
// internal/server pins the sentinel-error → wire-status mapping next to
// its HTTP TestErrorStatusContract.
const (
	// StatusOK is a successful response.
	StatusOK uint8 = 0x00
	// StatusBadRequest mirrors HTTP 400: request validation failed.
	StatusBadRequest uint8 = 0x01
	// StatusNotFound mirrors HTTP 404: an operand vector is not stored.
	StatusNotFound uint8 = 0x02
	// StatusSaturated mirrors HTTP 503 + Retry-After for a full admission
	// queue; retry_after_ms carries the backoff hint.
	StatusSaturated uint8 = 0x03
	// StatusDraining mirrors HTTP 503 + Retry-After during graceful
	// shutdown.
	StatusDraining uint8 = 0x04
	// StatusDeadline mirrors HTTP 504: the request deadline expired.
	StatusDeadline uint8 = 0x05
	// StatusCanceled mirrors 499: the client went away mid-request.
	StatusCanceled uint8 = 0x06
	// StatusInternal mirrors HTTP 500: an unrecognized server fault.
	StatusInternal uint8 = 0x07
)

// Bitwise-operation codes carried in the op byte of KindOp/KindReduce
// requests. The values are a stable protocol contract, pinned to the
// facade's op set by a test in internal/server.
const (
	// BitNot is the unary complement.
	BitNot uint8 = 0
	// BitAnd is bulk AND.
	BitAnd uint8 = 1
	// BitOr is bulk OR.
	BitOr uint8 = 2
	// BitNand is bulk NAND.
	BitNand uint8 = 3
	// BitNor is bulk NOR.
	BitNor uint8 = 4
	// BitXor is bulk XOR.
	BitXor uint8 = 5
	// BitXnor is bulk XNOR.
	BitXnor uint8 = 6
	// BitCopy is the unary row copy.
	BitCopy uint8 = 7
)

// Vertical-arithmetic operation codes carried in the op byte of KindArith
// requests. Like the Bit* codes, the values are a stable protocol
// contract, pinned to the facade's ArithOp set by a test in
// internal/server.
const (
	// ArithAdd is z = (x + y) mod 2^w.
	ArithAdd uint8 = 0
	// ArithSub is z = (x - y) mod 2^w.
	ArithSub uint8 = 1
	// ArithLt is the unsigned compare z = (x < y).
	ArithLt uint8 = 2
	// ArithLe is the unsigned compare z = (x <= y).
	ArithLe uint8 = 3
	// ArithEq is the equality compare z = (x == y).
	ArithEq uint8 = 4
	// ArithLts is the signed compare z = (x < y).
	ArithLts uint8 = 5
	// ArithLes is the signed compare z = (x <= y).
	ArithLes uint8 = 6
	// ArithPopcount counts each element's set bits (unary).
	ArithPopcount uint8 = 7
	// ArithSelect is the masked blend z = m ? x : y.
	ArithSelect uint8 = 8
)

// Frame-geometry constants.
const (
	// headerLen is the fixed request-id + kind prefix of every frame body
	// (the uint32 length word is not part of the body it counts).
	headerLen = 9
	// frameLenSize is the uint32 length word preceding every frame body.
	frameLenSize = 4
	// DefaultMaxFrame bounds the frame bodies a connection accepts
	// (64 MiB: a 512-Mbit vector payload, far beyond the JSON path's
	// 16 MiB body cap).
	DefaultMaxFrame = 64 << 20
	// MaxBits bounds the vector length a KindPut may declare, so a tiny
	// hostile frame cannot demand a multi-gigabyte allocation.
	MaxBits = 1 << 30
	// maxString bounds str16 fields by construction.
	maxString = 1<<16 - 1
)

// ErrMalformed tags every decode failure: truncated frames, oversize
// declarations, trailing garbage, or field values that violate the
// protocol. Handlers map it to StatusBadRequest; it is the fuzz targets'
// contract that malformed input yields this tag and never a panic or an
// over-read.
var ErrMalformed = errors.New("wire: malformed frame")

// ErrFrameTooLarge tags a frame whose declared length exceeds the
// connection's limit; the serving loop closes the connection, since the
// remaining stream cannot be trusted to be framed.
var ErrFrameTooLarge = errors.New("wire: frame exceeds size limit")

// malformedf builds an ErrMalformed-tagged error.
func malformedf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrMalformed, fmt.Sprintf(format, args...))
}

// Stats is the wire form of an operation's modeled cost, mirroring the
// JSON path's stats block field-for-field (48 bytes on the wire: three
// float64s then three uint64s, little-endian).
type Stats struct {
	// LatencyNS is the modeled latency in nanoseconds.
	LatencyNS float64
	// EnergyNJ is the modeled energy in nanojoules.
	EnergyNJ float64
	// AveragePowerW is EnergyNJ / LatencyNS.
	AveragePowerW float64
	// RowOps is the number of row-wide operations executed.
	RowOps uint64
	// Commands is the number of DRAM command primitives issued.
	Commands uint64
	// Wordlines is the total number of wordlines raised.
	Wordlines uint64
}

// statsWireLen is the encoded size of Stats.
const statsWireLen = 48

// Request is one decoded request frame. String fields and WordData alias
// (or are interned from) the frame buffer they were decoded from, so a
// Request is only valid until its frame buffer is recycled — the serving
// loop guarantees the buffer outlives the Backend.Handle call, and
// anything retained beyond that (vector contents, names entering the
// store) must be copied, which storing them naturally does.
type Request struct {
	// ID is the request id, echoed in the response frame.
	ID uint64
	// Kind is the opcode.
	Kind uint8
	// Op is the bitwise-operation code (KindOp/KindReduce).
	Op uint8
	// TimeoutMS is the per-request deadline in milliseconds; zero defers
	// to the server's configured default.
	TimeoutMS uint32
	// Name is the vector name (KindPut/KindGet/KindDelete) or the
	// namespace (KindQuery).
	Name string
	// Dst is the destination vector name (KindOp/KindReduce/KindEval).
	Dst string
	// X is the first operand (KindOp).
	X string
	// Y is the second operand (KindOp/KindArith, empty for unary ops).
	Y string
	// Mask is the mask vector name (KindArith, empty for unmasked ops).
	Mask string
	// Srcs are the reduction operands (KindReduce).
	Srcs []string
	// Expr is the expression source (KindEval) or the predicate source
	// (KindQuery).
	Expr string
	// Bits is the declared vector length (KindPut).
	Bits int
	// ElemWidth is the declared element width in bits (KindPutVert).
	ElemWidth int
	// Mode is the result mode (KindQuery, a Query* code).
	Mode uint8
	// Cursor is the resume position for paginated results (KindQuery,
	// positions mode).
	Cursor uint64
	// Limit is the page-size bound for paginated results (KindQuery,
	// positions mode; zero defers to the server default).
	Limit uint32
	// WordData is the raw little-endian word payload of a KindPut (8 bytes
	// per word, ceil(Bits/64) words, or empty for an all-zero vector) or
	// the element payload of a KindPutVert (8 bytes per element). It
	// aliases the frame buffer; copy before retaining.
	WordData []byte
}

// reset clears a Request for reuse, keeping the Srcs backing array.
func (r *Request) reset() {
	r.ID, r.Kind, r.Op, r.TimeoutMS = 0, 0, 0, 0
	r.Name, r.Dst, r.X, r.Y, r.Mask, r.Expr = "", "", "", "", "", ""
	r.Srcs = r.Srcs[:0]
	r.Bits, r.ElemWidth = 0, 0
	r.Mode, r.Cursor, r.Limit = 0, 0, 0
	r.WordData = nil
}

// ElemCount returns the number of element values in a KindPutVert's
// WordData.
func (r *Request) ElemCount() int { return len(r.WordData) / 8 }

// WordCount returns the number of 64-bit words in WordData.
func (r *Request) WordCount() int { return len(r.WordData) / 8 }

// StatusError is the client-side form of a non-OK response: the wire
// status, the server's backoff hint (saturated/draining only), and the
// human-readable message from the error payload.
type StatusError struct {
	// Code is the response status (StatusBadRequest ... StatusInternal).
	Code uint8
	// RetryAfterMS is the server's backoff hint in milliseconds, nonzero
	// only for StatusSaturated/StatusDraining.
	RetryAfterMS uint32
	// Msg is the server's failure description.
	Msg string
}

// Error renders the status and message.
func (e *StatusError) Error() string {
	return fmt.Sprintf("wire: status %s: %s", StatusName(e.Code), e.Msg)
}

// StatusName returns a human-readable name for a response status code.
func StatusName(code uint8) string {
	switch code {
	case StatusOK:
		return "ok"
	case StatusBadRequest:
		return "bad_request"
	case StatusNotFound:
		return "not_found"
	case StatusSaturated:
		return "saturated"
	case StatusDraining:
		return "draining"
	case StatusDeadline:
		return "deadline"
	case StatusCanceled:
		return "canceled"
	case StatusInternal:
		return "internal"
	default:
		return fmt.Sprintf("unknown(%d)", code)
	}
}
