package wire

import (
	"context"
	"errors"
	"fmt"
	"net"
	"reflect"
	"strings"
	"sync"
	"testing"
)

// reqEqual compares two decoded requests, treating nil and empty Srcs as
// the same (reset keeps the backing array).
func reqEqual(a, b *Request) bool {
	if a.ID != b.ID || a.Kind != b.Kind || a.Op != b.Op || a.TimeoutMS != b.TimeoutMS {
		return false
	}
	if a.Name != b.Name || a.Dst != b.Dst || a.X != b.X || a.Y != b.Y || a.Expr != b.Expr {
		return false
	}
	if a.Bits != b.Bits || string(a.WordData) != string(b.WordData) {
		return false
	}
	if a.Mode != b.Mode || a.Cursor != b.Cursor || a.Limit != b.Limit {
		return false
	}
	if len(a.Srcs) != len(b.Srcs) {
		return false
	}
	for i := range a.Srcs {
		if a.Srcs[i] != b.Srcs[i] {
			return false
		}
	}
	return true
}

// seedFrames returns one well-formed frame body (everything after the
// length word) per request kind — the decode fixtures and the fuzz seed
// corpus source.
func seedFrames() map[string][]byte {
	frames := map[string][]byte{
		"ping":   AppendPingRequest(nil, 1),
		"put":    AppendPutRequest(nil, 2, "v0", 130, []uint64{^uint64(0), ^uint64(0), 3}),
		"putz":   AppendPutRequest(nil, 3, "zeros", 64, nil),
		"get":    AppendGetRequest(nil, 4, "v0"),
		"delete": AppendDeleteRequest(nil, 5, "v0"),
		"op":     AppendOpRequest(nil, 6, BitAnd, 0, "dst", "x", "y"),
		"opnot":  AppendOpRequest(nil, 7, BitNot, 250, "dst", "x", ""),
		"reduce": AppendReduceRequest(nil, 8, BitOr, 0, "dst", []string{"a", "b", "c"}),
		"eval":   AppendEvalRequest(nil, 9, 0, "dst", "(a & b) | ~c"),
		"stats":  AppendStatsRequest(nil, 10),
		"arith":  AppendArithRequest(nil, 11, ArithAdd, 0, "z", "a", "b", ""),
		"arithm": AppendArithRequest(nil, 12, ArithSelect, 100, "z", "a", "b", "m"),
		"pvert":  AppendPutVertRequest(nil, 13, "v", 8, []uint64{5, 250, 77}),
		"gvert":  AppendGetVertRequest(nil, 14, "v"),
		"query":  AppendQueryRequest(nil, 15, 0, "ns", "(a & b) | ~c", QueryCount, 0, 0),
		"queryp": AppendQueryRequest(nil, 16, 250, "ns", "a ^ b", QueryPositions, 4096, 128),
	}
	for k, f := range frames {
		frames[k] = f[frameLenSize:] // DecodeRequest takes the body only
	}
	return frames
}

func TestDecodeRequestRoundTrip(t *testing.T) {
	for name, body := range seedFrames() {
		var req Request
		if err := DecodeRequest(body, &req, nil); err != nil {
			t.Fatalf("%s: decode: %v", name, err)
		}
		re := EncodeRequest(nil, &req)
		if string(re[frameLenSize:]) != string(body) {
			t.Fatalf("%s: re-encode mismatch\n got %x\nwant %x", name, re[frameLenSize:], body)
		}
		var req2 Request
		if err := DecodeRequest(re[frameLenSize:], &req2, nil); err != nil {
			t.Fatalf("%s: re-decode: %v", name, err)
		}
		if !reqEqual(&req, &req2) {
			t.Fatalf("%s: round trip changed request: %+v vs %+v", name, req, req2)
		}
	}
}

func TestDecodeRequestFields(t *testing.T) {
	body := AppendOpRequest(nil, 42, BitXor, 1500, "dst", "x", "y")[frameLenSize:]
	var req Request
	if err := DecodeRequest(body, &req, nil); err != nil {
		t.Fatal(err)
	}
	want := Request{ID: 42, Kind: KindOp, Op: BitXor, TimeoutMS: 1500, Dst: "dst", X: "x", Y: "y"}
	if !reqEqual(&req, &want) {
		t.Fatalf("got %+v, want %+v", req, want)
	}

	body = AppendPutRequest(nil, 7, "vec", 65, []uint64{^uint64(0), 1})[frameLenSize:]
	if err := DecodeRequest(body, &req, nil); err != nil {
		t.Fatal(err)
	}
	if req.Kind != KindPut || req.Name != "vec" || req.Bits != 65 || req.WordCount() != 2 {
		t.Fatalf("put decoded wrong: %+v", req)
	}
}

// TestDecodeRequestMalformed feeds the decoder a gallery of malformed
// frames; every one must come back tagged ErrMalformed — never a panic,
// never silent acceptance.
func TestDecodeRequestMalformed(t *testing.T) {
	valid := AppendOpRequest(nil, 1, BitAnd, 0, "dst", "x", "y")[frameLenSize:]
	cases := map[string][]byte{
		"empty":            {},
		"short header":     valid[:8],
		"header only op":   valid[:headerLen], // op payload truncated away
		"unknown kind":     {1, 0, 0, 0, 0, 0, 0, 0, 0xEE},
		"trailing garbage": append(append([]byte{}, valid...), 0xFF),
		"truncated str16":  valid[:len(valid)-2],
		"put zero bits":    AppendPutRequest(nil, 1, "v", 0, nil)[frameLenSize:],
		"put bits too big": AppendPutRequest(nil, 1, "v", MaxBits+1, nil)[frameLenSize:],
		"put empty name":   AppendPutRequest(nil, 1, "", 64, nil)[frameLenSize:],
		"get empty name":   AppendGetRequest(nil, 1, "")[frameLenSize:],
		"op empty dst":     AppendOpRequest(nil, 1, BitAnd, 0, "", "x", "y")[frameLenSize:],
		"op empty x":       AppendOpRequest(nil, 1, BitAnd, 0, "dst", "", "y")[frameLenSize:],
		"reduce one src":   AppendReduceRequest(nil, 1, BitAnd, 0, "dst", []string{"a"})[frameLenSize:],
		"reduce empty src": AppendReduceRequest(nil, 1, BitAnd, 0, "dst", []string{"a", ""})[frameLenSize:],
		"eval empty expr":  AppendEvalRequest(nil, 1, 0, "dst", "")[frameLenSize:],
		"query empty ns":   AppendQueryRequest(nil, 1, 0, "", "a & b", QueryCount, 0, 0)[frameLenSize:],
		"query empty pred": AppendQueryRequest(nil, 1, 0, "ns", "", QueryCount, 0, 0)[frameLenSize:],
		"query bad mode":   AppendQueryRequest(nil, 1, 0, "ns", "a", QueryPositions+1, 0, 0)[frameLenSize:],
	}
	// Word-count mismatch: name "v", bits 64, but 5 words declared.
	bad := appendHeader(nil, 1, KindPut)
	bad = appendStr16(bad, "v")
	bad = appendU32(bad, 64)
	bad = appendU32(bad, 5)
	cases["put word mismatch"] = bad

	var req Request
	for name, frame := range cases {
		err := DecodeRequest(frame, &req, nil)
		if err == nil {
			t.Errorf("%s: decoder accepted malformed frame %x", name, frame)
			continue
		}
		if !errors.Is(err, ErrMalformed) {
			t.Errorf("%s: error not tagged ErrMalformed: %v", name, err)
		}
	}
}

func TestStatsRoundTrip(t *testing.T) {
	st := Stats{LatencyNS: 123.5, EnergyNJ: 88.25, AveragePowerW: 0.75, RowOps: 9, Commands: 27, Wordlines: 1024}
	b := AppendStats(nil, st)
	if len(b) != statsWireLen {
		t.Fatalf("encoded stats is %d bytes, want %d", len(b), statsWireLen)
	}
	got, err := DecodeStats(b)
	if err != nil {
		t.Fatal(err)
	}
	if got != st {
		t.Fatalf("got %+v, want %+v", got, st)
	}
	if _, err := DecodeStats(b[:47]); !errors.Is(err, ErrMalformed) {
		t.Fatalf("short stats: got %v, want ErrMalformed", err)
	}
}

func TestErrorPayloadRoundTrip(t *testing.T) {
	b := AppendErrorPayload(nil, 1000, "queue is full")
	se := DecodeErrorPayload(StatusSaturated, b)
	if se.Code != StatusSaturated || se.RetryAfterMS != 1000 || se.Msg != "queue is full" {
		t.Fatalf("got %+v", se)
	}
	if !strings.Contains(se.Error(), "saturated") {
		t.Fatalf("Error() = %q, want status name", se.Error())
	}
}

// echoBackend is a minimal stub backend: op/reduce answer a fixed stats
// block, put/get echo geometry, everything else is empty-OK. notFound
// and boom trigger the error paths.
type echoBackend struct {
	stats Stats
}

var errStubNotFound = errors.New("stub: not found")

func (e *echoBackend) Handle(_ context.Context, req *Request, resp *Response) error {
	switch req.Kind {
	case KindOp, KindReduce:
		if req.Dst == "missing" {
			return errStubNotFound
		}
		resp.AppendStats(e.stats)
	case KindEval:
		resp.AppendStats(e.stats)
		resp.AppendU32(64)
	case KindPut:
		resp.AppendU32(uint32(req.Bits))
	case KindGet:
		if req.Name == "missing" {
			return errStubNotFound
		}
		resp.AppendU32(128)
		resp.AppendU64(2)
		resp.AppendWords([]uint64{1, 2})
	case KindArith:
		if req.Dst == "missing" {
			return errStubNotFound
		}
		resp.AppendStats(e.stats)
		resp.AppendU8(8)
		resp.AppendU32(4)
	case KindPutVert:
		resp.AppendU32(uint32(req.ElemCount()))
	case KindGetVert:
		if req.Name == "missing" {
			return errStubNotFound
		}
		resp.AppendU8(8)
		resp.AppendWords([]uint64{5, 250})
	case KindStats:
		resp.AppendBytes([]byte(`{"stub":true}`))
	}
	return nil
}

func stubStatusOf(err error) (uint8, uint32) {
	if errors.Is(err, errStubNotFound) {
		return StatusNotFound, 0
	}
	return StatusInternal, 0
}

// startStub serves one echo backend over an in-memory pipe and returns a
// connected client.
func startStub(t *testing.T, cfg ServerConfig) *Client {
	t.Helper()
	cn, sn := net.Pipe()
	if cfg.Backend == nil {
		cfg.Backend = &echoBackend{stats: Stats{LatencyNS: 10, RowOps: 1}}
	}
	if cfg.StatusOf == nil {
		cfg.StatusOf = stubStatusOf
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = ServeConn(sn, cfg)
	}()
	c := NewClient(cn)
	t.Cleanup(func() {
		_ = c.Close()
		_ = sn.Close()
		<-done
	})
	return c
}

func TestClientServerLoopback(t *testing.T) {
	c := startStub(t, ServerConfig{})
	if err := c.Ping(); err != nil {
		t.Fatalf("ping: %v", err)
	}
	if err := c.Put("v", 128, []uint64{1, 2}); err != nil {
		t.Fatalf("put: %v", err)
	}
	bits, pop, words, err := c.Get("v", nil)
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	if bits != 128 || pop != 2 || len(words) != 2 || words[0] != 1 || words[1] != 2 {
		t.Fatalf("get returned bits=%d pop=%d words=%v", bits, pop, words)
	}
	st, err := c.Op(BitAnd, 0, "dst", "x", "y")
	if err != nil {
		t.Fatalf("op: %v", err)
	}
	if st.LatencyNS != 10 || st.RowOps != 1 {
		t.Fatalf("op stats %+v", st)
	}
	if _, err := c.Reduce(BitOr, 0, "dst", []string{"a", "b"}); err != nil {
		t.Fatalf("reduce: %v", err)
	}
	if _, _, err := c.Eval(0, "dst", "a & b"); err != nil {
		t.Fatalf("eval: %v", err)
	}
	if err := c.Delete("v"); err != nil {
		t.Fatalf("delete: %v", err)
	}
	if err := c.PutVert("vert", 8, []uint64{5, 250, 17, 3}); err != nil {
		t.Fatalf("put_vert: %v", err)
	}
	width, elems, err := c.GetVert("vert", nil)
	if err != nil {
		t.Fatalf("get_vert: %v", err)
	}
	if width != 8 || len(elems) != 2 || elems[0] != 5 || elems[1] != 250 {
		t.Fatalf("get_vert returned width=%d elems=%v", width, elems)
	}
	st, elemWidth, elemCount, err := c.Arith(ArithAdd, 0, "dst", "x", "y", "")
	if err != nil {
		t.Fatalf("arith: %v", err)
	}
	if st.LatencyNS != 10 || elemWidth != 8 || elemCount != 4 {
		t.Fatalf("arith returned %+v width=%d elems=%d", st, elemWidth, elemCount)
	}
	payload, err := c.StatsJSON()
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	if string(payload) != `{"stub":true}` {
		t.Fatalf("stats payload %q", payload)
	}
}

func TestClientServerErrorStatus(t *testing.T) {
	c := startStub(t, ServerConfig{})
	_, err := c.Op(BitAnd, 0, "missing", "x", "y")
	var se *StatusError
	if !errors.As(err, &se) {
		t.Fatalf("op error %v (%T), want *StatusError", err, err)
	}
	if se.Code != StatusNotFound {
		t.Fatalf("status %d, want not_found", se.Code)
	}
	if !strings.Contains(se.Msg, "not found") {
		t.Fatalf("msg %q lost the backend error", se.Msg)
	}
}

// TestPipelinedConcurrentCalls hammers one connection from many
// goroutines: request-id multiplexing must match every response to its
// caller even when the worker pool completes them out of order.
func TestPipelinedConcurrentCalls(t *testing.T) {
	c := startStub(t, ServerConfig{Workers: 8})
	var wg sync.WaitGroup
	errCh := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if g%2 == 0 {
					st, err := c.Op(BitAnd, 0, "dst", "x", "y")
					if err != nil {
						errCh <- err
						return
					}
					if st.LatencyNS != 10 {
						errCh <- fmt.Errorf("goroutine %d got stats %+v", g, st)
						return
					}
				} else {
					_, err := c.Op(BitAnd, 0, "missing", "x", "y")
					var se *StatusError
					if !errors.As(err, &se) || se.Code != StatusNotFound {
						errCh <- fmt.Errorf("goroutine %d got %v, want not_found", g, err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

// TestOversizeFrameClosesConn sends a frame declaring a body beyond the
// connection's MaxFrame: the server must drop the connection (the stream
// cannot be re-synchronized), and the client's in-flight call fails.
func TestOversizeFrameClosesConn(t *testing.T) {
	cn, sn := net.Pipe()
	done := make(chan error, 1)
	go func() {
		done <- ServeConn(sn, ServerConfig{
			Backend:  &echoBackend{},
			MaxFrame: 1024,
		})
	}()
	// Length word declaring 1 MiB.
	frame := appendU32(nil, 1<<20)
	if _, err := cn.Write(frame); err != nil {
		t.Fatal(err)
	}
	err := <-done
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("ServeConn returned %v, want ErrFrameTooLarge", err)
	}
	_ = cn.Close()
}

// TestUndersizeFrameClosesConn sends a length word smaller than the fixed
// header: a framing violation, so the connection ends.
func TestUndersizeFrameClosesConn(t *testing.T) {
	cn, sn := net.Pipe()
	done := make(chan error, 1)
	go func() {
		done <- ServeConn(sn, ServerConfig{Backend: &echoBackend{}})
	}()
	if _, err := cn.Write(appendU32(nil, 3)); err != nil {
		t.Fatal(err)
	}
	if err := <-done; !errors.Is(err, ErrMalformed) {
		t.Fatalf("ServeConn returned %v, want ErrMalformed", err)
	}
	_ = cn.Close()
}

// TestMalformedFrameAnsweredInBand sends a well-framed but semantically
// bad request (unknown opcode): the server answers StatusBadRequest on
// the same connection, which stays usable.
func TestMalformedFrameAnsweredInBand(t *testing.T) {
	c := startStub(t, ServerConfig{})
	// Reach into the connection to enqueue a raw frame with an unknown
	// kind, then a valid ping: the ping must still succeed.
	body := appendHeader(nil, 999, 0xEE)
	frame := appendU32(nil, uint32(len(body)))
	frame = append(frame, body...)
	bp := getBuf(0)
	*bp = append(*bp, frame...)
	if err := c.enqueue(bp); err != nil {
		t.Fatal(err)
	}
	if err := c.Ping(); err != nil {
		t.Fatalf("connection unusable after in-band decode error: %v", err)
	}
}

// TestWireHandlerAllocFree is the zero-allocation gate on the hot serving
// loop: a steady-state op request — read, decode, dispatch to the
// backend, encode the stats response, write — must allocate nothing on
// either side of the connection once pools are warm. Regressions here are
// exactly the per-request garbage elpwire exists to eliminate.
func TestWireHandlerAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; the gate runs in the plain pass")
	}
	c := startStub(t, ServerConfig{Workers: 1})
	// Warm every pool and the connection's name interner.
	for i := 0; i < 64; i++ {
		if _, err := c.Op(BitAnd, 0, "dst", "x", "y"); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := c.Op(BitAnd, 0, "dst", "x", "y"); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("hot op path allocates %.1f times per request, want 0", allocs)
	}
}

// TestInternBounded checks the per-connection name cache stops growing at
// MaxInterned instead of letting a hostile client exhaust memory.
func TestInternBounded(t *testing.T) {
	c := &serverConn{cfg: ServerConfig{MaxInterned: 4}.withDefaults(), names: make(map[string]string)}
	c.cfg.MaxInterned = 4
	for i := 0; i < 100; i++ {
		name := fmt.Sprintf("v%d", i)
		if got := c.intern([]byte(name)); got != name {
			t.Fatalf("intern(%q) = %q", name, got)
		}
	}
	if len(c.names) > 4 {
		t.Fatalf("intern cache grew to %d entries, bound is 4", len(c.names))
	}
}

// TestEncodeableString pins the str16 bound.
func TestEncodeableString(t *testing.T) {
	if !EncodeableString(strings.Repeat("a", maxString)) {
		t.Fatal("maxString-long string must be encodeable")
	}
	if EncodeableString(strings.Repeat("a", maxString+1)) {
		t.Fatal("oversize string must not be encodeable")
	}
}

// TestRequestReset pins that reset clears every field (a stale field
// leaking across pooled requests would corrupt unrelated requests).
func TestRequestReset(t *testing.T) {
	req := Request{
		ID: 1, Kind: KindReduce, Op: BitOr, TimeoutMS: 5,
		Name: "n", Dst: "d", X: "x", Y: "y",
		Srcs: []string{"a", "b"}, Expr: "e", Bits: 64, WordData: []byte{1},
		Mode: QueryPositions, Cursor: 7, Limit: 9,
	}
	req.reset()
	empty := Request{Srcs: req.Srcs} // reset keeps the backing array
	if !reflect.DeepEqual(req, empty) || len(req.Srcs) != 0 {
		t.Fatalf("reset left state behind: %+v", req)
	}
}
