package analog

import (
	"fmt"
	"math/rand"
)

// Device selects which sensing mechanism a Monte-Carlo trial models.
type Device int

// Devices compared in Figure 11 of the paper.
const (
	// DeviceDRAM is a regular single-cell DRAM read.
	DeviceDRAM Device = iota
	// DeviceAmbit is a triple-row activation with inconsistent values
	// ('101'/'010' — the weak-1/weak-0 worst case).
	DeviceAmbit
	// DeviceELP2IM is the pseudo-precharge scheme with the regular
	// strategy (§3): worst case is a bitline regulated to Vdd/2 through
	// the SA path sensed against a reference precharged through the PU.
	DeviceELP2IM
	// DeviceELP2IMComplementary is the alternative strategy of §4.1, which
	// regulates the complementary bitline in the neighbouring subarray and
	// thereby sidesteps the aggravated same-line coupling.
	DeviceELP2IMComplementary
)

// String returns the device name.
func (d Device) String() string {
	switch d {
	case DeviceDRAM:
		return "DRAM"
	case DeviceAmbit:
		return "Ambit"
	case DeviceELP2IM:
		return "ELP2IM"
	case DeviceELP2IMComplementary:
		return "ELP2IM-complementary"
	default:
		return fmt.Sprintf("Device(%d)", int(d))
	}
}

// Variation selects how process variation is drawn across the components of
// one trial. The paper simulates the two extremes; any real device lies
// between them.
type Variation int

const (
	// VariationRandom draws every component (each cell capacitance, the SA
	// offset, the Vdd/2 delivery mismatch) independently.
	VariationRandom Variation = iota
	// VariationSystematic draws a single deviation shared by all cells on
	// the bitline — spatially correlated variation, under which the three
	// TRA cells "tend to be identical, and the error rate is suppressed".
	VariationSystematic
)

// String returns the variation-kind name.
func (v Variation) String() string {
	switch v {
	case VariationRandom:
		return "random"
	case VariationSystematic:
		return "systematic"
	default:
		return fmt.Sprintf("Variation(%d)", int(v))
	}
}

// couplingSwing returns the worst-case fraction of Vdd/2 by which
// neighbouring bitlines swing against the victim during its sense window,
// per device. Ambit's TRA produces "strong" full-rail neighbours against a
// weak victim; the complementary ELP2IM strategy moves the regulated line
// to the other subarray of the open-bitline pair.
func couplingSwing(d Device) float64 {
	switch d {
	case DeviceAmbit:
		return 1.0
	case DeviceELP2IM:
		return 0.75
	case DeviceELP2IMComplementary:
		return 0.35
	default: // regular DRAM
		return 0.5
	}
}

// trial runs one Monte-Carlo draw and reports whether the sense was correct.
func trial(c Circuit, d Device, vk Variation, sigma float64, rng *rand.Rand) bool {
	// Component deviations. In systematic mode one Gaussian draw is shared
	// by all matched components, so mismatch-driven terms cancel.
	var dev [4]float64 // cell caps (up to 3) + victim-cell deviation slot
	var saOffset, halfVddMismatch float64
	if vk == VariationRandom {
		for i := range dev {
			dev[i] = rng.NormFloat64() * sigma
		}
		saOffset = rng.NormFloat64() * sigma * c.SenseOffsetScale * c.Vdd
		halfVddMismatch = rng.NormFloat64() * sigma * c.HalfVddMismatchScale * c.Vdd
	} else {
		g := rng.NormFloat64() * sigma
		for i := range dev {
			dev[i] = g
		}
		// Correlated variation shifts SA and its reference together: the
		// residual offset is second-order. Model it as strongly attenuated.
		saOffset = g * sigma * c.SenseOffsetScale * c.Vdd
		halfVddMismatch = g * sigma * c.HalfVddMismatchScale * c.Vdd
	}

	// Worst-case coupling: the aggressor swing is drawn uniformly up to the
	// device's worst case and always pushes against the victim's margin.
	coupling := rng.Float64() * couplingSwing(d) * c.CouplingFraction * c.HalfVdd()

	half := c.HalfVdd()
	cc := func(i int) float64 { return c.Cc * (1 + dev[i]) }

	switch d {
	case DeviceDRAM:
		// Read a '0' cell: bitline must land below the reference.
		v := Share(half, c.Cb, 0, cc(0))
		return v+coupling+saOffset < half

	case DeviceAmbit:
		// Inconsistent TRA '101': majority is '1' but the two 1-cells must
		// out-pull the 0-cell; mismatched capacitances erode the margin.
		v := ShareMulti(half, c.Cb,
			[]float64{c.Vdd, 0, c.Vdd},
			[]float64{cc(0), cc(1), cc(2)})
		return v-coupling+saOffset > half

	case DeviceELP2IM, DeviceELP2IMComplementary:
		// Worst OR case '0'+'0': the bitline was regulated to Vdd/2 through
		// the SA supply path (mismatch halfVddMismatch), the reference line
		// precharged through the PU; then the second '0' cell is sensed.
		v := Share(half+halfVddMismatch, c.Cb, 0, cc(0))
		return v+coupling+saOffset < half

	default:
		panic("analog: unknown device")
	}
}

// ErrorRate estimates the probability that a worst-case sense fails for the
// given device under process variation σ (relative, e.g. 0.05 = 5%),
// using `trials` Monte-Carlo draws from a deterministic seed.
func ErrorRate(c Circuit, d Device, vk Variation, sigma float64, trials int, seed int64) float64 {
	if trials <= 0 {
		panic("analog: trials must be positive")
	}
	rng := rand.New(rand.NewSource(seed))
	fail := 0
	for i := 0; i < trials; i++ {
		if !trial(c, d, vk, sigma, rng) {
			fail++
		}
	}
	return float64(fail) / float64(trials)
}

// ErrorCurve evaluates ErrorRate over a slice of σ values, returning one
// rate per σ. It is the series generator for Figure 11.
func ErrorCurve(c Circuit, d Device, vk Variation, sigmas []float64, trials int, seed int64) []float64 {
	out := make([]float64, len(sigmas))
	for i, s := range sigmas {
		out[i] = ErrorRate(c, d, vk, s, trials, seed+int64(i)*7919)
	}
	return out
}
