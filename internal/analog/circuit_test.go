package analog

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDefaultValidates(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatalf("default circuit invalid: %v", err)
	}
	if err := ShortBitline().Validate(); err != nil {
		t.Fatalf("short-bitline circuit invalid: %v", err)
	}
}

func TestDefaultHasCommodityRatio(t *testing.T) {
	c := Default()
	ratio := c.Cb / c.Cc
	if ratio < 2 || ratio > 4 {
		t.Fatalf("Cb/Cc = %v, want the commodity 2–4 range", ratio)
	}
	s := ShortBitline()
	if s.Cb >= s.Cc {
		t.Fatalf("short bitline must have Cb < Cc, got %v/%v", s.Cb, s.Cc)
	}
}

func TestValidateRejectsBadCircuits(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Circuit)
	}{
		{"zero vdd", func(c *Circuit) { c.Vdd = 0 }},
		{"zero cb", func(c *Circuit) { c.Cb = 0 }},
		{"zero cc", func(c *Circuit) { c.Cc = 0 }},
		{"coupling out of range", func(c *Circuit) { c.CouplingFraction = 1 }},
		{"negative offset scale", func(c *Circuit) { c.SenseOffsetScale = -1 }},
		{"zero tau", func(c *Circuit) { c.TauSense = 0 }},
		{"pseudo faster than precharge", func(c *Circuit) { c.TauPseudo = c.TauPrecharge / 2 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := Default()
			tc.mutate(&c)
			if err := c.Validate(); err == nil {
				t.Error("Validate accepted invalid circuit")
			}
		})
	}
}

func TestShareChargeConservation(t *testing.T) {
	// Property: total charge before == after.
	f := func(vbRaw, vcRaw uint8) bool {
		vb := float64(vbRaw) / 255 * 1.5
		vc := float64(vcRaw) / 255 * 1.5
		cb, cc := 85.0, 28.0
		v := Share(vb, cb, vc, cc)
		before := cb*vb + cc*vc
		after := (cb + cc) * v
		return math.Abs(before-after) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShareBetweenInputs(t *testing.T) {
	v := Share(1.5, 85, 0, 28)
	if v <= 0 || v >= 1.5 {
		t.Fatalf("shared voltage %v outside input range", v)
	}
	// Bitline dominates: result closer to vb than vc.
	if math.Abs(v-1.5) > math.Abs(v-0) {
		t.Fatal("with Cb > Cc the bitline must dominate")
	}
}

func TestShareMultiMatchesSingle(t *testing.T) {
	single := Share(0.75, 85, 1.5, 28)
	multi := ShareMulti(0.75, 85, []float64{1.5}, []float64{28})
	if math.Abs(single-multi) > 1e-12 {
		t.Fatalf("ShareMulti single-cell %v != Share %v", multi, single)
	}
}

func TestShareMultiPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ShareMulti length mismatch did not panic")
		}
	}()
	ShareMulti(0.75, 85, []float64{1}, []float64{28, 28})
}

func TestReadMargin(t *testing.T) {
	c := Default()
	want := c.Cc / (c.Cb + c.Cc) * c.Vdd / 2
	if got := c.ReadMargin(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("ReadMargin = %v, want %v", got, want)
	}
}

func TestTRAMarginSigns(t *testing.T) {
	c := Default()
	for ones := 0; ones <= 3; ones++ {
		m := c.TRAMargin(ones)
		if ones >= 2 && m <= 0 {
			t.Errorf("TRA with %d ones: margin %v, want positive", ones, m)
		}
		if ones <= 1 && m >= 0 {
			t.Errorf("TRA with %d ones: margin %v, want negative", ones, m)
		}
	}
}

func TestTRAMarginSmallerThanRegular(t *testing.T) {
	// The paper: "TRA approach originally reduces the bitline voltage
	// sensing margin". Worst TRA case (2-vs-1) vs a regular read.
	c := Default()
	tra := math.Abs(c.TRAMargin(2))
	if tra >= c.ReadMargin() {
		t.Fatalf("TRA margin %v must be below regular margin %v", tra, c.ReadMargin())
	}
}

func TestTRAMarginPanicsOutOfRange(t *testing.T) {
	for _, ones := range []int{-1, 4} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("TRAMargin(%d) did not panic", ones)
				}
			}()
			Default().TRAMargin(ones)
		}()
	}
}

func TestTwoCycleExhaustiveCommodity(t *testing.T) {
	// On a commodity array (Cb/Cc = 3) both strategies compute correct
	// AND/OR for all four input combinations.
	c := Default()
	for _, op := range []TwoCycleOp{TwoCycleOR, TwoCycleAND} {
		for _, strat := range []Strategy{StrategyRegular, StrategyComplementary} {
			for _, a := range []bool{false, true} {
				for _, b := range []bool{false, true} {
					if !TwoCycleCorrect(c, op, strat, a, b) {
						t.Errorf("%v %v a=%v b=%v: wrong result", op, strat, a, b)
					}
				}
			}
		}
	}
}

func TestTwoCycleShortBitlineRegularFails(t *testing.T) {
	// §4.1: with Cb < Cc the regular strategy fails exactly on the cases
	// where the retained rail must overwrite an opposite-valued cell:
	// OR '1'+'0' and AND '0'ב1'.
	c := ShortBitline()
	if TwoCycleCorrect(c, TwoCycleOR, StrategyRegular, true, false) {
		t.Error("regular OR '1'+'0' should fail with Cb < Cc")
	}
	if TwoCycleCorrect(c, TwoCycleAND, StrategyRegular, false, true) {
		t.Error("regular AND '0'ב1' should fail with Cb < Cc")
	}
	// The non-overwrite cases still work.
	for _, tc := range []struct {
		op   TwoCycleOp
		a, b bool
	}{
		{TwoCycleOR, false, false}, {TwoCycleOR, false, true}, {TwoCycleOR, true, true},
		{TwoCycleAND, true, true}, {TwoCycleAND, true, false}, {TwoCycleAND, false, false},
	} {
		if !TwoCycleCorrect(c, tc.op, StrategyRegular, tc.a, tc.b) {
			t.Errorf("regular %v a=%v b=%v should still work", tc.op, tc.a, tc.b)
		}
	}
}

func TestTwoCycleShortBitlineComplementaryWorks(t *testing.T) {
	// §4.1: the complementary strategy is correct for any Cb/Cc ratio.
	c := ShortBitline()
	for _, op := range []TwoCycleOp{TwoCycleOR, TwoCycleAND} {
		for _, a := range []bool{false, true} {
			for _, b := range []bool{false, true} {
				if !TwoCycleCorrect(c, op, StrategyComplementary, a, b) {
					t.Errorf("complementary %v a=%v b=%v: wrong result on short bitline", op, a, b)
				}
			}
		}
	}
}

func TestTwoCycleComplementaryAnyRatioProperty(t *testing.T) {
	// Sweep the Cb/Cc ratio across two orders of magnitude: the
	// complementary strategy never errs.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := Default()
		c.Cb = c.Cc * (0.1 + rng.Float64()*10)
		for _, op := range []TwoCycleOp{TwoCycleOR, TwoCycleAND} {
			for _, a := range []bool{false, true} {
				for _, b := range []bool{false, true} {
					if !TwoCycleCorrect(c, op, StrategyComplementary, a, b) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOverwriteThreshold(t *testing.T) {
	// Just above threshold the regular strategy works, just below it fails.
	c := Default()
	c.Cc = 28
	c.Cb = 28 * (OverwriteThreshold() + 0.05)
	if !TwoCycleCorrect(c, TwoCycleOR, StrategyRegular, true, false) {
		t.Error("regular strategy should work just above the Cb/Cc threshold")
	}
	c.Cb = 28 * (OverwriteThreshold() - 0.05)
	if TwoCycleCorrect(c, TwoCycleOR, StrategyRegular, true, false) {
		t.Error("regular strategy should fail just below the Cb/Cc threshold")
	}
}

func TestTwoCycleStateProgression(t *testing.T) {
	c := Default()
	st := TwoCycle(c, TwoCycleOR, StrategyRegular, true, false)
	// After the first sense the bitline must be at Vdd (read '1').
	if st.AfterFirstSense[0] != c.Vdd {
		t.Errorf("after first sense VBL = %v, want Vdd", st.AfterFirstSense[0])
	}
	// OR retains '1' through pseudo-precharge.
	if st.AfterPseudo[0] != c.Vdd {
		t.Errorf("after pseudo VBL = %v, want Vdd retained", st.AfterPseudo[0])
	}
	// Split precharge drives only bitline-bar to Vdd/2.
	if st.AfterPrecharge[1] != c.HalfVdd() {
		t.Errorf("after precharge VBLB = %v, want Vdd/2", st.AfterPrecharge[1])
	}
	if !st.Result {
		t.Error("OR(1,0) must be 1")
	}
}

func TestStrategyAndOpStrings(t *testing.T) {
	if StrategyRegular.String() != "regular" || StrategyComplementary.String() != "complementary" {
		t.Error("strategy names wrong")
	}
	if TwoCycleOR.String() != "OR" || TwoCycleAND.String() != "AND" {
		t.Error("op names wrong")
	}
	if Strategy(9).String() == "" || TwoCycleOp(9).String() == "" {
		t.Error("unknown enums must still render")
	}
}
