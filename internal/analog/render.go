package analog

import (
	"fmt"
	"image"
	"image/color"
	"image/png"
	"io"
)

// RenderPNG draws the waveform (both bitlines plus phase boundaries) into
// a PNG — the publishable form of Figure 10.
func (w Waveform) RenderPNG(out io.Writer, width, height int) error {
	if len(w.Samples) == 0 {
		return fmt.Errorf("analog: empty waveform")
	}
	if width < 64 || height < 48 {
		return fmt.Errorf("analog: render size %dx%d too small", width, height)
	}

	const margin = 8
	img := image.NewRGBA(image.Rect(0, 0, width, height))
	bg := color.RGBA{255, 255, 255, 255}
	grid := color.RGBA{220, 220, 220, 255}
	blCol := color.RGBA{200, 40, 40, 255} // bitline
	bbCol := color.RGBA{40, 70, 200, 255} // bitline-bar
	phCol := color.RGBA{150, 150, 150, 255}

	for y := 0; y < height; y++ {
		for x := 0; x < width; x++ {
			img.Set(x, y, bg)
		}
	}

	tMax := w.Samples[len(w.Samples)-1].T
	vMax := 0.0
	for _, s := range w.Samples {
		if s.VBL > vMax {
			vMax = s.VBL
		}
		if s.VBLB > vMax {
			vMax = s.VBLB
		}
	}
	if vMax == 0 {
		vMax = 1
	}
	toX := func(t float64) int {
		return margin + int(t/tMax*float64(width-2*margin-1))
	}
	toY := func(v float64) int {
		return height - margin - 1 - int(v/vMax*float64(height-2*margin-1))
	}

	// Vdd/2 gridline.
	yHalf := toY(vMax / 2)
	for x := margin; x < width-margin; x++ {
		img.Set(x, yHalf, grid)
	}
	// Phase boundaries.
	prevPhase := w.Samples[0].Phase
	for _, s := range w.Samples[1:] {
		if s.Phase != prevPhase {
			x := toX(s.T)
			for y := margin; y < height-margin; y += 3 {
				img.Set(x, y, phCol)
			}
			prevPhase = s.Phase
		}
	}
	// Traces, with vertical interpolation so steps stay connected.
	plot := func(value func(Sample) float64, c color.RGBA) {
		px, py := toX(w.Samples[0].T), toY(value(w.Samples[0]))
		for _, s := range w.Samples[1:] {
			x, y := toX(s.T), toY(value(s))
			drawLine(img, px, py, x, y, c)
			px, py = x, y
		}
	}
	plot(func(s Sample) float64 { return s.VBLB }, bbCol)
	plot(func(s Sample) float64 { return s.VBL }, blCol)

	return png.Encode(out, img)
}

// drawLine draws a simple Bresenham line.
func drawLine(img *image.RGBA, x0, y0, x1, y1 int, c color.RGBA) {
	dx := abs(x1 - x0)
	dy := -abs(y1 - y0)
	sx, sy := 1, 1
	if x0 > x1 {
		sx = -1
	}
	if y0 > y1 {
		sy = -1
	}
	err := dx + dy
	for {
		img.Set(x0, y0, c)
		if x0 == x1 && y0 == y1 {
			return
		}
		e2 := 2 * err
		if e2 >= dy {
			err += dy
			x0 += sx
		}
		if e2 <= dx {
			err += dx
			y0 += sy
		}
	}
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
