package analog

import "fmt"

// Strategy selects how the pseudo-precharge state is applied.
type Strategy int

const (
	// StrategyRegular regulates the accessed bitline itself (§3): the
	// retained rail value later overwrites the second cell through charge
	// sharing. It requires Cb to dominate Cc.
	StrategyRegular Strategy = iota
	// StrategyComplementary regulates the complementary bitline (§4.1):
	// the retained information is a full-rail value on the reference line,
	// so the differential sense is correct for any Cb/Cc ratio.
	StrategyComplementary
)

// String returns the strategy name.
func (s Strategy) String() string {
	switch s {
	case StrategyRegular:
		return "regular"
	case StrategyComplementary:
		return "complementary"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// TwoCycleOp is the logic operation a two-cycle APP-AP sequence performs.
type TwoCycleOp int

const (
	// TwoCycleOR retains logic '1' across the pseudo-precharge (the SA's
	// ground rail shifts to Vdd/2, so a '0' bitline is erased to Vdd/2).
	TwoCycleOR TwoCycleOp = iota
	// TwoCycleAND retains logic '0' (the Vdd rail shifts to Vdd/2).
	TwoCycleAND
)

// String returns the op name.
func (o TwoCycleOp) String() string {
	if o == TwoCycleAND {
		return "AND"
	}
	return "OR"
}

// TwoCycleState captures the bitline pair voltages after each step of the
// APP-AP sequence, for tests and waveform rendering.
type TwoCycleState struct {
	AfterFirstSense   [2]float64 // VBL, VBLB after first activate+sense
	AfterPseudo       [2]float64 // after pseudo-precharge
	AfterPrecharge    [2]float64 // after split-EQ precharge
	AfterSecondShare  [2]float64 // after charge sharing with the 2nd cell
	Result            bool       // sensed result, restored into the 2nd cell
	DifferentialSense float64    // VBL - VBLB at the decision point
}

// TwoCycle simulates the two-cycle APP-AP sequence of Figure 4 at the
// charge-conservation level and returns the final state. a is the bit read
// in the first cycle, b the bit stored in the second cell; the returned
// Result is what the second cell holds afterwards.
//
// With StrategyRegular the result is only guaranteed correct when Cb
// sufficiently exceeds Cc; with StrategyComplementary it is correct for any
// ratio (the mechanism of §4.1).
func TwoCycle(c Circuit, op TwoCycleOp, strat Strategy, a, b bool) TwoCycleState {
	half := c.HalfVdd()
	rail := func(bit bool) float64 {
		if bit {
			return c.Vdd
		}
		return 0
	}

	var st TwoCycleState

	// Cycle 1: activate the first cell and sense to full rails. In the
	// open-bitline pair, bitline carries the datum, bitline-bar the
	// complement.
	vbl, vblb := rail(a), rail(!a)
	st.AfterFirstSense = [2]float64{vbl, vblb}

	// Pseudo-precharge: shift one SA supply to Vdd/2. Which node moves
	// depends on the op and the strategy.
	switch strat {
	case StrategyRegular:
		switch op {
		case TwoCycleOR: // Gnd → Vdd/2: a '0' bitline is erased.
			if vbl == 0 {
				vbl = half
			}
			if vblb == 0 {
				vblb = half
			}
		case TwoCycleAND: // Vdd → Vdd/2: a '1' bitline is erased.
			if vbl == c.Vdd {
				vbl = half
			}
			if vblb == c.Vdd {
				vblb = half
			}
		}
		st.AfterPseudo = [2]float64{vbl, vblb}
		// Split-EQ precharge: only bitline-bar is driven to Vdd/2; the
		// bitline keeps its (possibly full-rail) value.
		vblb = half
	case StrategyComplementary:
		switch op {
		case TwoCycleOR: // supplies become (Vdd/2, Gnd): the high node drops.
			if vbl == c.Vdd {
				vbl = half
			}
			if vblb == c.Vdd {
				vblb = half
			}
		case TwoCycleAND: // supplies become (Vdd, Vdd/2): the low node rises.
			if vbl == 0 {
				vbl = half
			}
			if vblb == 0 {
				vblb = half
			}
		}
		st.AfterPseudo = [2]float64{vbl, vblb}
		// Split-EQ precharge: only the bitline is driven to Vdd/2; the
		// complementary line keeps its retained value.
		vbl = half
	default:
		panic("analog: unknown strategy")
	}
	st.AfterPrecharge = [2]float64{vbl, vblb}

	// Cycle 2: access the second cell — charge sharing between the
	// (possibly regulated) bitline and the cell capacitor.
	vbl = Share(vbl, c.Cb, rail(b), c.Cc)
	st.AfterSecondShare = [2]float64{vbl, vblb}

	// Differential sense: the SA resolves toward whichever input is higher
	// and restores the result into the open second cell.
	st.DifferentialSense = vbl - vblb
	st.Result = st.DifferentialSense > 0
	return st
}

// TwoCycleCorrect reports whether TwoCycle produces the boolean-correct
// result for the given inputs.
func TwoCycleCorrect(c Circuit, op TwoCycleOp, strat Strategy, a, b bool) bool {
	want := a || b
	if op == TwoCycleAND {
		want = a && b
	}
	return TwoCycle(c, op, strat, a, b).Result == want
}

// OverwriteThreshold returns the minimum Cb/Cc ratio at which the regular
// strategy's overwrite is sound: sharing a full-rail bitline with an
// opposite-rail cell must keep the line on the correct side of Vdd/2.
// Sharing Vdd (bitline) with 0 (cell) gives Vdd·Cb/(Cb+Cc) > Vdd/2
// ⇔ Cb > Cc, so the threshold is exactly 1.
func OverwriteThreshold() float64 { return 1.0 }
