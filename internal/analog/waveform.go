package analog

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/timing"
)

// Sample is one point of a simulated waveform.
type Sample struct {
	T     float64 // ns since sequence start
	VBL   float64 // bitline voltage
	VBLB  float64 // complementary bitline voltage
	Phase string  // phase label active at T
}

// Waveform is a voltage trace of a primitive sequence on one column,
// the reproduction of Figure 10.
type Waveform struct {
	Op      TwoCycleOp
	A, B    bool
	Result  bool
	Samples []Sample
}

// waveSim integrates exponential settling toward per-line targets.
type waveSim struct {
	c        Circuit
	dt       float64
	t        float64
	vbl, vbb float64
	out      []Sample
}

func (w *waveSim) record(phase string) {
	w.out = append(w.out, Sample{T: w.t, VBL: w.vbl, VBLB: w.vbb, Phase: phase})
}

// settle advances `dur` ns with both lines settling exponentially toward
// their targets with time constant tau; a negative target freezes a line.
func (w *waveSim) settle(dur, tau, targetBL, targetBB float64, phase string) {
	steps := int(dur/w.dt + 0.5)
	if steps < 1 {
		steps = 1
	}
	for i := 0; i < steps; i++ {
		k := 1 - math.Exp(-w.dt/tau)
		if targetBL >= 0 {
			w.vbl += (targetBL - w.vbl) * k
		}
		if targetBB >= 0 {
			w.vbb += (targetBB - w.vbb) * k
		}
		w.t += w.dt
		w.record(phase)
	}
}

// SimulateAPPAP traces one APP-AP two-cycle operation with the regular
// strategy. See SimulateAPPAPStrategy.
func SimulateAPPAP(c Circuit, tp timing.Params, op TwoCycleOp, a, b bool) Waveform {
	return SimulateAPPAPStrategy(c, tp, op, StrategyRegular, a, b)
}

// SimulateAPPAPStrategy traces one APP-AP two-cycle operation: activate
// the cell holding a → pseudo-precharge (regular: regulate the bitline;
// complementary: regulate the reference line, §4.1) → split precharge →
// activate the cell holding b → sense/restore. It returns the full trace
// plus the functionally sensed result.
func SimulateAPPAPStrategy(c Circuit, tp timing.Params, op TwoCycleOp, strat Strategy, a, b bool) Waveform {
	half := c.HalfVdd()
	rail := func(bit bool) float64 {
		if bit {
			return c.Vdd
		}
		return 0
	}

	sim := &waveSim{c: c, dt: 0.25, vbl: half, vbb: half}
	sim.record("precharged")

	// --- Cycle 1 (APP) ---
	// Access: wordline on, instantaneous charge sharing with cell a.
	sim.vbl = Share(sim.vbl, c.Cb, rail(a), c.Cc)
	sim.settle(tp.Duration(timing.PhaseAccess), c.TauSense*4, -1, -1, "access1")
	// Sense: SA resolves toward rails.
	sim.settle(tp.Duration(timing.PhaseSense), c.TauSense, rail(a), rail(!a), "sense1")
	// Restore: lines pinned at rails.
	sim.settle(tp.Duration(timing.PhaseRestore), c.TauRestore, rail(a), rail(!a), "restore1")

	// Pseudo-precharge: one SA supply shifts to Vdd/2. Which rail moves
	// depends on the op and strategy: the regular strategy erases the
	// non-retained rail so the information stays on the bitline; the
	// complementary strategy (§4.1) shifts the opposite rail so the
	// information stays on the reference line.
	tgtBL, tgtBB := sim.vbl, sim.vbb
	eraseLow := op == TwoCycleOR // Gnd → Vdd/2 erases '0' lines
	if strat == StrategyComplementary {
		eraseLow = !eraseLow
	}
	if eraseLow {
		if sim.vbl < half {
			tgtBL = half
		}
		if sim.vbb < half {
			tgtBB = half
		}
	} else {
		if sim.vbl > half {
			tgtBL = half
		}
		if sim.vbb > half {
			tgtBB = half
		}
	}
	sim.settle(tp.PseudoPrecharge(), c.TauPseudo, tgtBL, tgtBB, "pseudo-precharge")

	// Split-EQ precharge: regular drives only bitline-bar to Vdd/2;
	// complementary drives only the bitline (the access line).
	if strat == StrategyComplementary {
		sim.settle(tp.Duration(timing.PhasePrecharge), c.TauPrecharge, half, -1, "precharge1")
	} else {
		sim.settle(tp.Duration(timing.PhasePrecharge), c.TauPrecharge, -1, half, "precharge1")
	}

	// --- Cycle 2 (AP) ---
	sim.vbl = Share(sim.vbl, c.Cb, rail(b), c.Cc)
	sim.settle(tp.Duration(timing.PhaseAccess), c.TauSense*4, -1, -1, "access2")
	result := sim.vbl > sim.vbb
	sim.settle(tp.Duration(timing.PhaseSense), c.TauSense, rail(result), rail(!result), "sense2")
	sim.settle(tp.Duration(timing.PhaseRestore), c.TauRestore, rail(result), rail(!result), "restore2")
	// Final precharge back to idle.
	sim.settle(tp.Duration(timing.PhasePrecharge), c.TauPrecharge, half, half, "precharge2")

	return Waveform{Op: op, A: a, B: b, Result: result, Samples: sim.out}
}

// RenderASCII renders the bitline voltage of a waveform as a compact ASCII
// strip chart (one row per voltage band), for terminal inspection.
func (w Waveform) RenderASCII(width int) string {
	if width <= 0 || len(w.Samples) == 0 {
		return ""
	}
	const rows = 9
	grid := make([][]byte, rows)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	tMax := w.Samples[len(w.Samples)-1].T
	var vMax float64
	for _, s := range w.Samples {
		if s.VBL > vMax {
			vMax = s.VBL
		}
	}
	if vMax == 0 {
		vMax = 1
	}
	for _, s := range w.Samples {
		x := int(s.T / tMax * float64(width-1))
		y := rows - 1 - int(s.VBL/vMax*float64(rows-1)+0.5)
		if y < 0 {
			y = 0
		}
		if y >= rows {
			y = rows - 1
		}
		grid[y][x] = '*'
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s(%v,%v) -> %v   [VBL, 0..%.2fV, %.0fns]\n",
		w.Op, b01(w.A), b01(w.B), b01(w.Result), vMax, tMax)
	for _, row := range grid {
		b.Write(row)
		b.WriteByte('\n')
	}
	return b.String()
}

func b01(v bool) int {
	if v {
		return 1
	}
	return 0
}

// CSV renders the waveform as "t,vbl,vblb,phase" lines.
func (w Waveform) CSV() string {
	var b strings.Builder
	b.WriteString("t_ns,v_bitline,v_bitline_bar,phase\n")
	for _, s := range w.Samples {
		fmt.Fprintf(&b, "%.2f,%.4f,%.4f,%s\n", s.T, s.VBL, s.VBLB, s.Phase)
	}
	return b.String()
}
