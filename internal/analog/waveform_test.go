package analog

import (
	"bytes"
	"image/png"
	"math"
	"strings"
	"testing"

	"repro/internal/timing"
)

func TestSimulateAPPAPFunctionalResults(t *testing.T) {
	c := Default()
	tp := timing.DDR31600()
	for _, tc := range []struct {
		op   TwoCycleOp
		a, b bool
		want bool
	}{
		{TwoCycleOR, true, false, true},   // case 1 of Figure 4
		{TwoCycleOR, false, false, false}, // case 2 of Figure 4
		{TwoCycleOR, false, true, true},
		{TwoCycleOR, true, true, true},
		{TwoCycleAND, false, true, false},
		{TwoCycleAND, true, true, true},
		{TwoCycleAND, true, false, false},
		{TwoCycleAND, false, false, false},
	} {
		w := SimulateAPPAP(c, tp, tc.op, tc.a, tc.b)
		if w.Result != tc.want {
			t.Errorf("%v(%v,%v) = %v, want %v", tc.op, tc.a, tc.b, w.Result, tc.want)
		}
	}
}

func TestWaveformVoltagesBounded(t *testing.T) {
	c := Default()
	tp := timing.DDR31600()
	w := SimulateAPPAP(c, tp, TwoCycleOR, true, false)
	for _, s := range w.Samples {
		if s.VBL < -1e-9 || s.VBL > c.Vdd+1e-9 {
			t.Fatalf("VBL %v at t=%v outside [0,Vdd]", s.VBL, s.T)
		}
		if s.VBLB < -1e-9 || s.VBLB > c.Vdd+1e-9 {
			t.Fatalf("VBLB %v at t=%v outside [0,Vdd]", s.VBLB, s.T)
		}
	}
}

func TestWaveformTimeMonotone(t *testing.T) {
	w := SimulateAPPAP(Default(), timing.DDR31600(), TwoCycleAND, false, true)
	for i := 1; i < len(w.Samples); i++ {
		if w.Samples[i].T <= w.Samples[i-1].T {
			t.Fatalf("time not monotone at sample %d", i)
		}
	}
}

func TestWaveformPhasesPresent(t *testing.T) {
	w := SimulateAPPAP(Default(), timing.DDR31600(), TwoCycleOR, false, false)
	seen := map[string]bool{}
	for _, s := range w.Samples {
		seen[s.Phase] = true
	}
	for _, ph := range []string{"access1", "sense1", "restore1", "pseudo-precharge", "precharge1", "access2", "sense2", "restore2", "precharge2"} {
		if !seen[ph] {
			t.Errorf("phase %q missing from waveform", ph)
		}
	}
}

func TestWaveformORRegulation(t *testing.T) {
	// Reading '0' in an OR sequence: the bitline must be pulled up to Vdd/2
	// by the end of the pseudo-precharge state (Figure 10's defining
	// feature), not left at Gnd.
	c := Default()
	w := SimulateAPPAP(c, timing.DDR31600(), TwoCycleOR, false, false)
	var last Sample
	for _, s := range w.Samples {
		if s.Phase == "pseudo-precharge" {
			last = s
		}
	}
	if math.Abs(last.VBL-c.HalfVdd()) > 0.05 {
		t.Fatalf("bitline after pseudo-precharge = %v, want ~Vdd/2", last.VBL)
	}
}

func TestWaveformORRetention(t *testing.T) {
	// Reading '1' in an OR sequence: the bitline holds Vdd through
	// pseudo-precharge and precharge.
	c := Default()
	w := SimulateAPPAP(c, timing.DDR31600(), TwoCycleOR, true, false)
	for _, s := range w.Samples {
		if s.Phase == "pseudo-precharge" || s.Phase == "precharge1" {
			if s.VBL < c.Vdd*0.95 {
				t.Fatalf("bitline dropped to %v during %s, want retained at Vdd", s.VBL, s.Phase)
			}
		}
	}
}

func TestRenderASCII(t *testing.T) {
	w := SimulateAPPAP(Default(), timing.DDR31600(), TwoCycleOR, true, false)
	s := w.RenderASCII(80)
	if !strings.Contains(s, "OR(1,0) -> 1") {
		t.Fatalf("ASCII header missing: %q", strings.SplitN(s, "\n", 2)[0])
	}
	if strings.Count(s, "\n") < 5 {
		t.Fatal("ASCII render too short")
	}
	if w.RenderASCII(0) != "" {
		t.Fatal("zero width must render empty")
	}
}

func TestCSVFormat(t *testing.T) {
	w := SimulateAPPAP(Default(), timing.DDR31600(), TwoCycleAND, true, true)
	csv := w.CSV()
	if !strings.HasPrefix(csv, "t_ns,v_bitline,v_bitline_bar,phase\n") {
		t.Fatal("CSV header missing")
	}
	lines := strings.Count(csv, "\n")
	if lines != len(w.Samples)+1 {
		t.Fatalf("CSV has %d lines, want %d", lines, len(w.Samples)+1)
	}
}

func TestWaveformDurationMatchesTiming(t *testing.T) {
	// The trace should span roughly APP + AP = 67 + 49 + final precharge.
	tp := timing.DDR31600()
	w := SimulateAPPAP(Default(), tp, TwoCycleOR, false, true)
	total := w.Samples[len(w.Samples)-1].T
	want := tp.TRAS() + tp.PseudoPrecharge() + tp.TRP() + // APP
		tp.TRAS() + tp.TRP() // AP (with trailing precharge)
	if math.Abs(total-want) > 2 {
		t.Fatalf("waveform spans %v ns, want ~%v", total, want)
	}
}

func TestComplementaryWaveformAllCases(t *testing.T) {
	tp := timing.DDR31600()
	for _, c := range []Circuit{Default(), ShortBitline()} {
		for _, op := range []TwoCycleOp{TwoCycleOR, TwoCycleAND} {
			for _, a := range []bool{false, true} {
				for _, b := range []bool{false, true} {
					w := SimulateAPPAPStrategy(c, tp, op, StrategyComplementary, a, b)
					want := a || b
					if op == TwoCycleAND {
						want = a && b
					}
					if w.Result != want {
						t.Errorf("complementary %v(%v,%v) = %v, want %v (Cb=%v)",
							op, a, b, w.Result, want, c.Cb)
					}
				}
			}
		}
	}
}

func TestRegularWaveformFailsOnShortBitline(t *testing.T) {
	// §4.1 at the waveform level: with Cb < Cc the regular strategy's
	// overwrite case produces the wrong result; the complementary one
	// does not.
	c := ShortBitline()
	tp := timing.DDR31600()
	reg := SimulateAPPAPStrategy(c, tp, TwoCycleOR, StrategyRegular, true, false)
	if reg.Result {
		t.Fatal("regular OR(1,0) on a short bitline should fail (that is the §4.1 motivation)")
	}
	comp := SimulateAPPAPStrategy(c, tp, TwoCycleOR, StrategyComplementary, true, false)
	if !comp.Result {
		t.Fatal("complementary OR(1,0) must be correct on a short bitline")
	}
}

func TestRenderPNG(t *testing.T) {
	w := SimulateAPPAP(Default(), timing.DDR31600(), TwoCycleOR, true, false)
	var buf bytes.Buffer
	if err := w.RenderPNG(&buf, 640, 240); err != nil {
		t.Fatal(err)
	}
	img, err := png.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	b := img.Bounds()
	if b.Dx() != 640 || b.Dy() != 240 {
		t.Fatalf("decoded size %dx%d", b.Dx(), b.Dy())
	}
	// The trace must have drawn some red (bitline) pixels.
	red := 0
	for y := b.Min.Y; y < b.Max.Y; y++ {
		for x := b.Min.X; x < b.Max.X; x++ {
			r, g, bb, _ := img.At(x, y).RGBA()
			if r > 0xB000 && g < 0x5000 && bb < 0x5000 {
				red++
			}
		}
	}
	if red < 100 {
		t.Fatalf("only %d bitline pixels drawn", red)
	}
	// Error paths.
	if err := (Waveform{}).RenderPNG(&buf, 640, 240); err == nil {
		t.Error("empty waveform accepted")
	}
	if err := w.RenderPNG(&buf, 10, 10); err == nil {
		t.Error("tiny canvas accepted")
	}
}
