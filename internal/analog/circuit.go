// Package analog is a first-order circuit model of a DRAM column: bitline
// and cell capacitances, charge sharing, a differential sense amplifier
// with shiftable supply rails, the split-EQ precharge unit, bitline
// coupling, and process variation.
//
// The paper evaluates these mechanisms with H-SPICE; this package replaces
// the transistor-level solver with charge conservation and exponential
// RC settling, which reproduces the two observables the paper consumes:
// timing ratios (pseudo-precharge vs precharge vs restore) and sensing
// margins / Monte-Carlo error rates under process variation and coupling
// (Figures 10 and 11).
package analog

import "errors"

// Circuit holds the electrical parameters of one DRAM column.
// Capacitances are in femtofarads, voltages in volts, times in ns.
type Circuit struct {
	// Vdd is the array supply voltage (DDR3: 1.5 V).
	Vdd float64
	// Cb is the bitline parasitic capacitance.
	Cb float64
	// Cc is the cell storage capacitance. Commodity arrays have
	// Cb/Cc ≈ 2–4; short-bitline arrays can have Cb ≲ Cc (§4.1).
	Cc float64
	// CouplingFraction is the bitline-to-bitline coupling capacitance as a
	// fraction of Cb (paper: 0.15).
	CouplingFraction float64
	// SenseOffsetScale converts a process-variation σ into an SA input
	// offset σ in volts: offsetσ = σ · SenseOffsetScale · Vdd.
	SenseOffsetScale float64
	// HalfVddMismatchScale converts a PV σ into the mismatch σ between the
	// Vdd/2 delivered through the SA path (pseudo-precharge) and through
	// the PU path (precharge). This noise source exists only in ELP2IM.
	HalfVddMismatchScale float64
	// TauSense is the SA settling time constant during sensing, ns.
	TauSense float64
	// TauRestore is the bitline/cell restore time constant, ns.
	TauRestore float64
	// TauPrecharge is the PU equalization time constant, ns.
	TauPrecharge float64
	// TauPseudo is the pseudo-precharge regulation time constant. The SA
	// at half supply has 11–23% less drive strength, so TauPseudo is
	// proportionally longer than TauPrecharge.
	TauPseudo float64
}

// Default returns the calibration used throughout the reproduction,
// matching the Rambus-model-derived parameters the paper cites:
// Cb/Cc = 3, 15% coupling, DDR3 1.5 V arrays.
func Default() Circuit {
	return Circuit{
		Vdd:                  1.5,
		Cb:                   85,
		Cc:                   28,
		CouplingFraction:     0.15,
		SenseOffsetScale:     0.28,
		HalfVddMismatchScale: 0.10,
		TauSense:             1.8,
		TauRestore:           4.5,
		TauPrecharge:         2.8,
		TauPseudo:            3.6,
	}
}

// ShortBitline returns a configuration for a reduced-latency, short-bitline
// subarray where Cb < Cc — the regime in which ELP2IM's regular strategy
// fails and the complementary strategy of §4.1 is required.
func ShortBitline() Circuit {
	c := Default()
	c.Cb = 20
	c.Cc = 28
	c.TauSense = 1.2
	c.TauRestore = 3.2
	c.TauPrecharge = 1.8
	c.TauPseudo = 2.3
	return c
}

// Validate reports whether the circuit parameters are physically meaningful.
func (c Circuit) Validate() error {
	switch {
	case c.Vdd <= 0:
		return errors.New("analog: Vdd must be positive")
	case c.Cb <= 0 || c.Cc <= 0:
		return errors.New("analog: capacitances must be positive")
	case c.CouplingFraction < 0 || c.CouplingFraction >= 1:
		return errors.New("analog: CouplingFraction must be in [0,1)")
	case c.SenseOffsetScale < 0 || c.HalfVddMismatchScale < 0:
		return errors.New("analog: variation scales must be non-negative")
	case c.TauSense <= 0 || c.TauRestore <= 0 || c.TauPrecharge <= 0 || c.TauPseudo <= 0:
		return errors.New("analog: time constants must be positive")
	case c.TauPseudo < c.TauPrecharge:
		return errors.New("analog: TauPseudo must be >= TauPrecharge (SA drive weakens at half supply)")
	}
	return nil
}

// HalfVdd returns Vdd/2.
func (c Circuit) HalfVdd() float64 { return c.Vdd / 2 }

// Share returns the bitline voltage after charge sharing a bitline at vb
// (capacitance cb) with one cell at vc (capacitance cc): pure charge
// conservation.
func Share(vb, cb, vc, cc float64) float64 {
	return (cb*vb + cc*vc) / (cb + cc)
}

// ShareMulti returns the bitline voltage after simultaneously sharing the
// bitline (vb, cb) with several cells — the triple-row-activation case.
// vcs and ccs must have equal length.
func ShareMulti(vb, cb float64, vcs, ccs []float64) float64 {
	if len(vcs) != len(ccs) {
		panic("analog: ShareMulti length mismatch")
	}
	q := cb * vb
	ct := cb
	for i, vc := range vcs {
		q += ccs[i] * vc
		ct += ccs[i]
	}
	return q / ct
}

// ReadMargin returns the single-cell sensing margin |ΔV| a regular access
// develops on the bitline: Cc/(Cb+Cc) · Vdd/2.
func (c Circuit) ReadMargin() float64 {
	return c.Cc / (c.Cb + c.Cc) * c.HalfVdd()
}

// TRAMargin returns the sensing margin of an Ambit triple-row activation
// with `ones` of the three cells storing '1'. The result is signed:
// positive means the bitline lands above Vdd/2 (sensed as '1').
func (c Circuit) TRAMargin(ones int) float64 {
	if ones < 0 || ones > 3 {
		panic("analog: TRAMargin ones out of range")
	}
	vcs := make([]float64, 3)
	ccs := []float64{c.Cc, c.Cc, c.Cc}
	for i := 0; i < ones; i++ {
		vcs[i] = c.Vdd
	}
	v := ShareMulti(c.HalfVdd(), c.Cb, vcs, ccs)
	return v - c.HalfVdd()
}
