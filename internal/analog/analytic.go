package analog

import (
	"fmt"
	"math"
)

// AnalyticErrorRate estimates the worst-case sense failure probability in
// closed form under random process variation: the Gaussian noise sources
// (cell-capacitance deviations propagated through charge sharing, the SA
// input offset, and — for ELP2IM — the Vdd/2 delivery mismatch) are summed
// in quadrature, and the uniform coupling aggressor is integrated out:
//
//	P(fail) = E_c~U(0,K) [ Φ((c − margin)/σ) ]
//
// It exists as an independent check of the Monte-Carlo model (Figure 11):
// the two must agree within sampling error.
func AnalyticErrorRate(c Circuit, d Device, sigma float64) float64 {
	half := c.HalfVdd()

	// margin and Gaussian sigma per device, via numeric sensitivities.
	var margin, gauss float64
	saSigma := sigma * c.SenseOffsetScale * c.Vdd

	switch d {
	case DeviceDRAM, DeviceELP2IM, DeviceELP2IMComplementary:
		v := func(dev float64) float64 { return Share(half, c.Cb, 0, c.Cc*(1+dev)) }
		margin = half - v(0)
		sens := (v(sigma) - v(-sigma)) / 2
		varTotal := sens*sens + saSigma*saSigma
		if d != DeviceDRAM {
			mm := sigma * c.HalfVddMismatchScale * c.Vdd
			// The mismatch shifts the regulated bitline before sharing:
			// sensitivity ≈ Cb/(Cb+Cc).
			k := c.Cb / (c.Cb + c.Cc)
			varTotal += (mm * k) * (mm * k)
		}
		gauss = math.Sqrt(varTotal)

	case DeviceAmbit:
		v := func(d1, d2, d3 float64) float64 {
			return ShareMulti(half, c.Cb,
				[]float64{c.Vdd, 0, c.Vdd},
				[]float64{c.Cc * (1 + d1), c.Cc * (1 + d2), c.Cc * (1 + d3)})
		}
		margin = v(0, 0, 0) - half
		s1 := (v(sigma, 0, 0) - v(-sigma, 0, 0)) / 2
		s2 := (v(0, sigma, 0) - v(0, -sigma, 0)) / 2
		s3 := (v(0, 0, sigma) - v(0, 0, -sigma)) / 2
		gauss = math.Sqrt(s1*s1 + s2*s2 + s3*s3 + saSigma*saSigma)

	default:
		panic(fmt.Sprintf("analog: no analytic model for %v", d))
	}

	couplingMax := couplingSwing(d) * c.CouplingFraction * half
	if gauss == 0 {
		// Degenerate: deterministic failure only when coupling alone
		// crosses the margin.
		if couplingMax <= margin {
			return 0
		}
		return (couplingMax - margin) / couplingMax
	}

	// Integrate Φ((c − margin)/σ) over c ~ U(0, couplingMax).
	const steps = 400
	total := 0.0
	for i := 0; i < steps; i++ {
		coup := (float64(i) + 0.5) / steps * couplingMax
		total += phi((coup - margin) / gauss)
	}
	return total / steps
}

// phi is the standard normal CDF.
func phi(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}
