package analog

import (
	"math"
	"testing"
)

const (
	mcTrials = 20000
	mcSeed   = 42
)

func TestErrorRateZeroSigmaIsZero(t *testing.T) {
	// With no process variation every device's worst-case margin beats the
	// worst-case coupling noise; error rates must be exactly zero.
	c := Default()
	for _, d := range []Device{DeviceDRAM, DeviceAmbit, DeviceELP2IM, DeviceELP2IMComplementary} {
		for _, vk := range []Variation{VariationRandom, VariationSystematic} {
			if got := ErrorRate(c, d, vk, 0, 2000, mcSeed); got != 0 {
				t.Errorf("%v/%v error rate at sigma=0 is %v, want 0", d, vk, got)
			}
		}
	}
}

func TestRandomPVOrderingAmbitWorst(t *testing.T) {
	// Figure 11(a): under random PV, Ambit's error rate exceeds ELP2IM's,
	// which is at or above regular DRAM's.
	c := Default()
	sigma := 0.06
	ambit := ErrorRate(c, DeviceAmbit, VariationRandom, sigma, mcTrials, mcSeed)
	elp := ErrorRate(c, DeviceELP2IM, VariationRandom, sigma, mcTrials, mcSeed)
	dram := ErrorRate(c, DeviceDRAM, VariationRandom, sigma, mcTrials, mcSeed)
	if ambit <= elp {
		t.Errorf("Ambit error %v must exceed ELP2IM %v under random PV", ambit, elp)
	}
	if elp < dram {
		t.Errorf("ELP2IM error %v must be >= regular DRAM %v", elp, dram)
	}
	if ambit == 0 {
		t.Error("Ambit error rate should be non-zero at sigma=6%")
	}
}

func TestELP2IMAboveDRAMAtHighSigma(t *testing.T) {
	// The Vdd/2 delivery mismatch and larger coupling exposure make
	// ELP2IM's error rate strictly higher than regular DRAM at high PV —
	// "error rate of ELP2IM is still higher than regular DRAM".
	c := Default()
	sigma := 0.20
	elp := ErrorRate(c, DeviceELP2IM, VariationRandom, sigma, mcTrials, mcSeed)
	dram := ErrorRate(c, DeviceDRAM, VariationRandom, sigma, mcTrials, mcSeed)
	if elp <= dram {
		t.Errorf("ELP2IM error %v must strictly exceed DRAM %v at sigma=20%%", elp, dram)
	}
}

func TestSystematicPVSuppressesAmbit(t *testing.T) {
	// Figure 11(b): under systematic PV the triple TRA cells are identical
	// and Ambit's error rate collapses relative to random PV.
	c := Default()
	sigma := 0.06
	random := ErrorRate(c, DeviceAmbit, VariationRandom, sigma, mcTrials, mcSeed)
	systematic := ErrorRate(c, DeviceAmbit, VariationSystematic, sigma, mcTrials, mcSeed)
	if systematic >= random {
		t.Errorf("systematic Ambit error %v must be below random %v", systematic, random)
	}
}

func TestComplementaryStrategyReducesErrors(t *testing.T) {
	// §4.1/§6.1.2: regulating the complementary bitline in the other
	// subarray avoids the aggravated coupling; error rate must not exceed
	// the regular strategy's.
	c := Default()
	for _, sigma := range []float64{0.06, 0.12, 0.20} {
		reg := ErrorRate(c, DeviceELP2IM, VariationRandom, sigma, mcTrials, mcSeed)
		comp := ErrorRate(c, DeviceELP2IMComplementary, VariationRandom, sigma, mcTrials, mcSeed)
		if comp > reg {
			t.Errorf("sigma=%v: complementary error %v exceeds regular %v", sigma, comp, reg)
		}
	}
}

func TestErrorRateMonotoneInSigma(t *testing.T) {
	// More variation can only hurt (within Monte-Carlo noise; we allow a
	// small tolerance).
	c := Default()
	for _, d := range []Device{DeviceDRAM, DeviceAmbit, DeviceELP2IM} {
		prev := -1.0
		for _, sigma := range []float64{0.02, 0.06, 0.10, 0.16} {
			rate := ErrorRate(c, d, VariationRandom, sigma, mcTrials, mcSeed)
			if rate < prev-0.005 {
				t.Errorf("%v: error rate dropped from %v to %v as sigma rose to %v", d, prev, rate, sigma)
			}
			prev = rate
		}
	}
}

func TestErrorRateDeterministic(t *testing.T) {
	c := Default()
	a := ErrorRate(c, DeviceAmbit, VariationRandom, 0.08, 5000, 7)
	b := ErrorRate(c, DeviceAmbit, VariationRandom, 0.08, 5000, 7)
	if a != b {
		t.Fatalf("same seed gave different rates: %v vs %v", a, b)
	}
}

func TestErrorCurveShape(t *testing.T) {
	c := Default()
	sigmas := []float64{0.02, 0.06, 0.10}
	curve := ErrorCurve(c, DeviceAmbit, VariationRandom, sigmas, 5000, mcSeed)
	if len(curve) != len(sigmas) {
		t.Fatalf("curve length %d, want %d", len(curve), len(sigmas))
	}
	for i, r := range curve {
		if r < 0 || r > 1 {
			t.Errorf("curve[%d] = %v outside [0,1]", i, r)
		}
	}
}

func TestErrorRatePanicsOnBadTrials(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ErrorRate with zero trials did not panic")
		}
	}()
	ErrorRate(Default(), DeviceDRAM, VariationRandom, 0.05, 0, 1)
}

func TestDeviceVariationStrings(t *testing.T) {
	for d, want := range map[Device]string{
		DeviceDRAM: "DRAM", DeviceAmbit: "Ambit",
		DeviceELP2IM: "ELP2IM", DeviceELP2IMComplementary: "ELP2IM-complementary",
	} {
		if d.String() != want {
			t.Errorf("Device string = %q, want %q", d.String(), want)
		}
	}
	if VariationRandom.String() != "random" || VariationSystematic.String() != "systematic" {
		t.Error("variation names wrong")
	}
	if Device(42).String() == "" || Variation(42).String() == "" {
		t.Error("unknown enums must render")
	}
}

// TestAnalyticMatchesMonteCarlo cross-checks the closed-form error model
// against the Monte-Carlo simulation — two independent implementations of
// the same physics must agree within sampling error.
func TestAnalyticMatchesMonteCarlo(t *testing.T) {
	c := Default()
	const trials = 40000
	for _, d := range []Device{DeviceDRAM, DeviceAmbit, DeviceELP2IM, DeviceELP2IMComplementary} {
		for _, sigma := range []float64{0.04, 0.08, 0.12, 0.16} {
			mc := ErrorRate(c, d, VariationRandom, sigma, trials, 2024)
			an := AnalyticErrorRate(c, d, sigma)
			tol := 0.3*math.Max(mc, an) + 3*math.Sqrt(math.Max(mc, 1e-4)/trials) + 1e-3
			if math.Abs(mc-an) > tol {
				t.Errorf("%v sigma=%v: MC %.4g vs analytic %.4g (tol %.4g)", d, sigma, mc, an, tol)
			}
		}
	}
}

func TestAnalyticPanicsOnUnknownDevice(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown device did not panic")
		}
	}()
	AnalyticErrorRate(Default(), Device(9), 0.05)
}

func TestAnalyticOrderingMatchesFigure11(t *testing.T) {
	c := Default()
	sigma := 0.10
	dram := AnalyticErrorRate(c, DeviceDRAM, sigma)
	elp := AnalyticErrorRate(c, DeviceELP2IM, sigma)
	amb := AnalyticErrorRate(c, DeviceAmbit, sigma)
	if !(amb > elp && elp >= dram) {
		t.Fatalf("analytic ordering broken: ambit %v, elp %v, dram %v", amb, elp, dram)
	}
}
