package sched

import (
	"math"
	"testing"

	"repro/internal/ambit"
	"repro/internal/elpim"
	"repro/internal/engine"
	"repro/internal/primitive"
	"repro/internal/timing"
)

const horizon = 200_000 // ns

func mustSimulate(t *testing.T, p OpProfile, cfg Config) Result {
	t.Helper()
	r, err := Simulate(p, cfg, horizon)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestProfileValidate(t *testing.T) {
	good := OpProfile{LatencyNS: 100, Events: []Event{{0, 1}, {50, 3}}}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []OpProfile{
		{LatencyNS: 0},
		{LatencyNS: 100, Events: []Event{{50, 1}, {10, 1}}},
		{LatencyNS: 100, Events: []Event{{150, 1}}},
		{LatencyNS: 100, Events: []Event{{10, 0}}},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad profile %d accepted", i)
		}
	}
}

func TestProfileFromSeqELP2IMChain(t *testing.T) {
	// The in-place APP-AP chain: 2 events, 1 wordline each, ~116 ns.
	e := elpim.MustNew(elpim.DefaultConfig())
	q, err := e.ChainSeq(engine.OpAND)
	if err != nil {
		t.Fatal(err)
	}
	p := ProfileFromSeq(q, timing.DDR31600())
	if len(p.Events) != 2 {
		t.Fatalf("events = %d, want 2", len(p.Events))
	}
	if p.WordlinesPerOp() != 2 {
		t.Fatalf("wordlines/op = %d, want 2", p.WordlinesPerOp())
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestProfileFromSeqAmbitChain(t *testing.T) {
	// Ambit chained AND (≥6 rows): oAAP + oAAP + TRA = events with a
	// 3-wordline peak, 7 wordlines total.
	a := ambit.MustNew(ambit.DefaultConfig())
	q, err := a.ChainSeq(engine.OpAND)
	if err != nil {
		t.Fatal(err)
	}
	p := ProfileFromSeq(q, timing.DDR31600())
	if p.WordlinesPerOp() != 7 {
		t.Fatalf("wordlines/op = %d, want 7", p.WordlinesPerOp())
	}
	peak := 0
	for _, e := range p.Events {
		if e.Wordlines > peak {
			peak = e.Wordlines
		}
	}
	if peak != 3 {
		t.Fatalf("peak wordlines = %d, want 3", peak)
	}
}

func TestProfileDurationMatchesSeq(t *testing.T) {
	tp := timing.DDR31600()
	q := primitive.Seq{{Kind: primitive.OAAP}, {Kind: primitive.APP}, {Kind: primitive.OAAP}}
	p := ProfileFromSeq(q, tp)
	if math.Abs(p.LatencyNS-q.Duration(tp)) > 1e-9 {
		t.Fatalf("profile latency %v != seq duration %v", p.LatencyNS, q.Duration(tp))
	}
}

func TestUnconstrainedUsesAllBanks(t *testing.T) {
	p := OpProfile{LatencyNS: 116, Events: []Event{{0, 1}, {67, 1}}}
	r := mustSimulate(t, p, Config{Banks: 8, Timing: timing.DDR31600(), PowerConstrained: false})
	if math.Abs(r.EffectiveBanks-8) > 0.1 {
		t.Fatalf("effective banks = %v, want 8 without constraint", r.EffectiveBanks)
	}
	if r.StallFraction != 0 {
		t.Fatalf("stall fraction = %v, want 0", r.StallFraction)
	}
}

func TestConstraintHalvesELP2IMBanks(t *testing.T) {
	// The paper (§6.3.1): under the power constraint ELP2IM's active banks
	// drop "to the half, from 8 to 4".
	e := elpim.MustNew(elpim.DefaultConfig())
	q := e.Compile(engine.OpAND) // oAAP-APP-oAAP: 5 wordlines / 173 ns
	p := ProfileFromSeq(q, timing.DDR31600())
	r := mustSimulate(t, p, Config{Banks: 8, Timing: timing.DDR31600(), PowerConstrained: true})
	if r.EffectiveBanks < 3 || r.EffectiveBanks > 5 {
		t.Fatalf("ELP2IM effective banks = %v, want ~4 (paper: 8 → 4)", r.EffectiveBanks)
	}
}

func TestConstraintCrushesAmbit(t *testing.T) {
	// Figure 13(b): Ambit's device throughput drops up to ~83% — TRA's
	// triple wordlines exhaust the pump budget at ~2 banks.
	a := ambit.MustNew(ambit.DefaultConfig())
	q := a.Seq(engine.OpAND) // 4 commands, 10 wordlines / 212 ns
	p := ProfileFromSeq(q, timing.DDR31600())
	cfg := Config{Banks: 8, Timing: timing.DDR31600(), PowerConstrained: true}
	r := mustSimulate(t, p, cfg)
	if r.EffectiveBanks > 2.6 {
		t.Fatalf("Ambit effective banks = %v, want ≲2.5", r.EffectiveBanks)
	}
	drop := 1 - r.EffectiveBanks/8
	if drop < 0.65 {
		t.Fatalf("Ambit throughput drop = %.0f%%, want ≳65%%", drop*100)
	}
}

func TestELP2IMKeepsMoreBanksThanAmbit(t *testing.T) {
	tp := timing.DDR31600()
	cfg := Config{Banks: 8, Timing: tp, PowerConstrained: true}
	e := elpim.MustNew(elpim.DefaultConfig())
	a := ambit.MustNew(ambit.DefaultConfig())
	re := mustSimulate(t, ProfileFromSeq(e.Compile(engine.OpAND), tp), cfg)
	ra := mustSimulate(t, ProfileFromSeq(a.Seq(engine.OpAND), tp), cfg)
	if re.EffectiveBanks <= ra.EffectiveBanks {
		t.Fatalf("ELP2IM banks %v must exceed Ambit %v under constraint",
			re.EffectiveBanks, ra.EffectiveBanks)
	}
	// §1: "we save up to 2.45× row activations, thereby expanding bank
	// level parallelism by 2.45×" — check the parallelism ratio band.
	ratio := re.EffectiveBanks / ra.EffectiveBanks
	if ratio < 1.5 || ratio > 3.0 {
		t.Fatalf("bank-parallelism ratio = %v, want within [1.5, 3.0] (~2.45 in the paper)", ratio)
	}
}

func TestSimulateMatchesAnalytic(t *testing.T) {
	tp := timing.DDR31600()
	for _, banks := range []int{2, 4, 8} {
		for _, constrained := range []bool{false, true} {
			cfg := Config{Banks: banks, Timing: tp, PowerConstrained: constrained}
			e := elpim.MustNew(elpim.DefaultConfig())
			p := ProfileFromSeq(e.Compile(engine.OpOR), tp)
			r := mustSimulate(t, p, cfg)
			want := AnalyticBanks(p, cfg)
			if math.Abs(r.EffectiveBanks-want) > 0.15*want+0.1 {
				t.Errorf("banks=%d constrained=%v: simulated %v vs analytic %v",
					banks, constrained, r.EffectiveBanks, want)
			}
		}
	}
}

func TestSimulateNeverExceedsBudget(t *testing.T) {
	// Invariant: the achieved wordline rate never exceeds the pump supply.
	tp := timing.DDR31600()
	a := ambit.MustNew(ambit.DefaultConfig())
	p := ProfileFromSeq(a.Seq(engine.OpXOR), tp)
	r := mustSimulate(t, p, Config{Banks: 8, Timing: tp, PowerConstrained: true})
	wlRate := r.OpsPerSecond / 1e9 * float64(p.WordlinesPerOp()) // wordlines per ns
	supply := float64(tp.ActivatesPerTFAW) / tp.TFAW
	if wlRate > supply*1.01 {
		t.Fatalf("wordline rate %v exceeds pump supply %v", wlRate, supply)
	}
}

func TestSimulateErrors(t *testing.T) {
	good := OpProfile{LatencyNS: 100, Events: []Event{{0, 1}}}
	tp := timing.DDR31600()
	if _, err := Simulate(OpProfile{}, Config{Banks: 1, Timing: tp}, 100); err == nil {
		t.Error("invalid profile accepted")
	}
	if _, err := Simulate(good, Config{Banks: 0, Timing: tp}, 100); err == nil {
		t.Error("zero banks accepted")
	}
	if _, err := Simulate(good, Config{Banks: 1, Timing: timing.Params{}}, 100); err == nil {
		t.Error("invalid timing accepted")
	}
	if _, err := Simulate(good, Config{Banks: 1, Timing: tp}, 0); err == nil {
		t.Error("zero horizon accepted")
	}
}

func TestEventlessProfile(t *testing.T) {
	p := OpProfile{LatencyNS: 50}
	r := mustSimulate(t, p, Config{Banks: 2, Timing: timing.DDR31600(), PowerConstrained: true})
	if math.Abs(r.EffectiveBanks-2) > 0.1 {
		t.Fatalf("eventless ops are unconstrained; banks = %v, want 2", r.EffectiveBanks)
	}
}

func TestRefreshTax(t *testing.T) {
	// Refresh blackouts cost roughly TRFC/TREFI of throughput.
	tp := timing.DDR31600()
	p := OpProfile{LatencyNS: 116, Events: []Event{{0, 1}, {67, 1}}}
	base := mustSimulate(t, p, Config{Banks: 8, Timing: tp})
	withRefresh := mustSimulate(t, p, Config{Banks: 8, Timing: tp, ModelRefresh: true})
	loss := 1 - withRefresh.OpsPerSecond/base.OpsPerSecond
	want := tp.RefreshOverhead()
	if loss < want*0.5 || loss > want*2.5 {
		t.Fatalf("refresh loss = %.3f, want near %.3f", loss, want)
	}
	if withRefresh.OpsPerSecond >= base.OpsPerSecond {
		t.Fatal("refresh must cost throughput")
	}
}

func TestRefreshDisabledWhenTREFIZero(t *testing.T) {
	tp := timing.DDR31600()
	tp.TREFI = 0
	tp.TRFC = 0
	p := OpProfile{LatencyNS: 116, Events: []Event{{0, 1}}}
	r := mustSimulate(t, p, Config{Banks: 2, Timing: tp, ModelRefresh: true})
	if r.StallFraction != 0 {
		t.Fatalf("stalls with refresh disabled: %v", r.StallFraction)
	}
}

func TestStallFractionPositiveUnderConstraint(t *testing.T) {
	tp := timing.DDR31600()
	a := ambit.MustNew(ambit.DefaultConfig())
	p := ProfileFromSeq(a.Seq(engine.OpAND), tp)
	r := mustSimulate(t, p, Config{Banks: 8, Timing: tp, PowerConstrained: true})
	if r.StallFraction <= 0 {
		t.Fatal("Ambit at 8 banks must stall under the power constraint")
	}
}

func TestRanksScaleTheBudget(t *testing.T) {
	// The tFAW constraint is per rank: a two-rank module has two charge
	// pumps and roughly doubles the constrained parallelism.
	tp := timing.DDR31600()
	a := ambit.MustNew(ambit.DefaultConfig())
	p := ProfileFromSeq(a.Seq(engine.OpAND), tp)
	one := mustSimulate(t, p, Config{Banks: 8, Ranks: 1, Timing: tp, PowerConstrained: true})
	two := mustSimulate(t, p, Config{Banks: 8, Ranks: 2, Timing: tp, PowerConstrained: true})
	ratio := two.EffectiveBanks / one.EffectiveBanks
	if ratio < 1.7 || ratio > 2.3 {
		t.Fatalf("two ranks scaled banks by %v, want ~2", ratio)
	}
	// Unconstrained, ranks change nothing.
	freeOne := mustSimulate(t, p, Config{Banks: 8, Ranks: 1, Timing: tp})
	freeTwo := mustSimulate(t, p, Config{Banks: 8, Ranks: 2, Timing: tp})
	if math.Abs(freeOne.EffectiveBanks-freeTwo.EffectiveBanks) > 0.01 {
		t.Fatal("ranks must not matter without the constraint")
	}
}

func TestRanksValidation(t *testing.T) {
	p := OpProfile{LatencyNS: 100, Events: []Event{{0, 1}}}
	if _, err := Simulate(p, Config{Banks: 8, Ranks: 3, Timing: timing.DDR31600()}, 1000); err == nil {
		t.Fatal("banks not divisible by ranks accepted")
	}
}

func TestAnalyticBanksWithRanks(t *testing.T) {
	tp := timing.DDR31600()
	e := elpim.MustNew(elpim.DefaultConfig())
	p := ProfileFromSeq(e.Compile(engine.OpAND), tp)
	one := AnalyticBanks(p, Config{Banks: 8, Ranks: 1, Timing: tp, PowerConstrained: true})
	two := AnalyticBanks(p, Config{Banks: 8, Ranks: 2, Timing: tp, PowerConstrained: true})
	if two <= one {
		t.Fatal("analytic banks must grow with ranks")
	}
	if two > 8 {
		t.Fatal("analytic banks capped at the bank count")
	}
}
