package sched

import (
	"strconv"
	"sync"
	"sync/atomic"
)

// Cache memoizes Simulate results. Simulate is deterministic — the result
// is a pure function of (profile, config, horizon) — so a cached Result is
// bit-identical to a fresh simulation. The key embeds every input,
// including the full timing parameter set, so a configuration change can
// never alias a stale entry: "invalidation on config change" falls out of
// the keying. Reset exists for callers that want to bound memory.
//
// The cache keeps hit/miss/eviction counters (plain atomics — the package
// stays leaf so the observability layer can surface them without an import
// cycle) and bounds its entry count: beyond the capacity, an arbitrary
// entry is evicted per insert. The set of distinct (design, op, config)
// triples a process touches is small, so evictions only fire for
// pathological workloads (e.g. fuzzing over random timing parameters).
//
// A Cache is safe for concurrent use.
type Cache struct {
	mu  sync.RWMutex
	m   map[string]Result
	cap int

	hits, misses, evictions atomic.Int64
}

// DefaultCacheCap is the entry bound of caches built by NewCache.
const DefaultCacheCap = 4096

// NewCache returns an empty cache bounded at DefaultCacheCap entries.
func NewCache() *Cache {
	return NewCacheCap(DefaultCacheCap)
}

// NewCacheCap returns an empty cache bounded at n entries (n < 1 means
// unbounded).
func NewCacheCap(n int) *Cache {
	return &Cache{m: make(map[string]Result), cap: n}
}

// key serializes every Simulate input exactly. Floats are encoded with
// strconv 'b' (binary exponent) format, which is lossless, so two configs
// differing in any bit of any parameter get distinct keys.
func key(p OpProfile, cfg Config, horizonNS float64) string {
	f := func(v float64) string { return strconv.FormatFloat(v, 'b', -1, 64) }
	b := make([]byte, 0, 64+32*len(p.Events))
	app := func(s string) { b = append(append(b, s...), '|') }
	app(f(p.LatencyNS))
	for _, e := range p.Events {
		app(f(e.OffsetNS))
		app(strconv.Itoa(e.Wordlines))
	}
	app("cfg")
	app(strconv.Itoa(cfg.Banks))
	app(strconv.Itoa(cfg.Ranks))
	app(strconv.FormatBool(cfg.PowerConstrained))
	app(strconv.FormatBool(cfg.ModelRefresh))
	tp := cfg.Timing
	for _, v := range []float64{
		tp.AccessSense, tp.Restore, tp.Precharge, tp.OverlapActivate,
		tp.PseudoPrechargeFactor, tp.TFAW, tp.Clock, tp.TREFI, tp.TRFC,
	} {
		app(f(v))
	}
	app(strconv.Itoa(tp.ActivatesPerTFAW))
	app(f(horizonNS))
	return string(b)
}

// Simulate returns the memoized result of Simulate(p, cfg, horizonNS),
// running the event-accurate simulation on the first miss.
func (c *Cache) Simulate(p OpProfile, cfg Config, horizonNS float64) (Result, error) {
	k := key(p, cfg, horizonNS)
	c.mu.RLock()
	res, ok := c.m[k]
	c.mu.RUnlock()
	if ok {
		c.hits.Add(1)
		return res, nil
	}
	c.misses.Add(1)
	res, err := Simulate(p, cfg, horizonNS)
	if err != nil {
		// Errors are cheap to recompute (validation fails before the
		// horizon loop) and carry no result worth caching.
		return Result{}, err
	}
	c.mu.Lock()
	if _, exists := c.m[k]; !exists && c.cap > 0 && len(c.m) >= c.cap {
		// Evict one arbitrary entry to stay within the bound; the memo
		// has no access-order worth tracking at this hit rate.
		for victim := range c.m {
			delete(c.m, victim)
			c.evictions.Add(1)
			break
		}
	}
	c.m[k] = res
	c.mu.Unlock()
	return res, nil
}

// Len returns the number of cached results.
func (c *Cache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.m)
}

// Reset drops every cached result. Dropped entries count as evictions.
func (c *Cache) Reset() {
	c.mu.Lock()
	c.evictions.Add(int64(len(c.m)))
	c.m = make(map[string]Result)
	c.mu.Unlock()
}

// CacheStats is a point-in-time copy of a cache's effectiveness counters.
type CacheStats struct {
	// Hits and Misses count Simulate lookups by outcome.
	Hits, Misses int64
	// Evictions counts entries dropped by the capacity bound and Reset.
	Evictions int64
	// Entries is the current entry count.
	Entries int64
}

// HitRate returns Hits / (Hits + Misses), or 0 before any lookup.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Stats returns the cache's current effectiveness counters.
func (c *Cache) Stats() CacheStats {
	return CacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Entries:   int64(c.Len()),
	}
}

// defaultCache backs CachedSimulate: one process-wide memo shared by every
// accelerator and case study. Profiles and configs are tiny and the set of
// distinct (design, op, config) triples a process touches is small, so the
// cache stays bounded in practice (and hard-bounded at DefaultCacheCap).
var defaultCache = NewCache()

// CachedSimulate is Simulate memoized through the process-wide cache.
func CachedSimulate(p OpProfile, cfg Config, horizonNS float64) (Result, error) {
	return defaultCache.Simulate(p, cfg, horizonNS)
}

// ResetCache drops the process-wide memo (test hook / memory bound).
func ResetCache() { defaultCache.Reset() }

// CacheLen returns the process-wide memo's entry count (observability).
func CacheLen() int { return defaultCache.Len() }

// GlobalCacheStats returns the process-wide memo's hit/miss/eviction
// counters, surfaced as the sched.cache.* series in metric snapshots.
func GlobalCacheStats() CacheStats { return defaultCache.Stats() }
