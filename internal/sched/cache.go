package sched

import (
	"strconv"
	"sync"
)

// Cache memoizes Simulate results. Simulate is deterministic — the result
// is a pure function of (profile, config, horizon) — so a cached Result is
// bit-identical to a fresh simulation. The key embeds every input,
// including the full timing parameter set, so a configuration change can
// never alias a stale entry: "invalidation on config change" falls out of
// the keying. Reset exists for callers that want to bound memory.
//
// A Cache is safe for concurrent use.
type Cache struct {
	mu sync.RWMutex
	m  map[string]Result
}

// NewCache returns an empty cache.
func NewCache() *Cache {
	return &Cache{m: make(map[string]Result)}
}

// key serializes every Simulate input exactly. Floats are encoded with
// strconv 'b' (binary exponent) format, which is lossless, so two configs
// differing in any bit of any parameter get distinct keys.
func key(p OpProfile, cfg Config, horizonNS float64) string {
	f := func(v float64) string { return strconv.FormatFloat(v, 'b', -1, 64) }
	b := make([]byte, 0, 64+32*len(p.Events))
	app := func(s string) { b = append(append(b, s...), '|') }
	app(f(p.LatencyNS))
	for _, e := range p.Events {
		app(f(e.OffsetNS))
		app(strconv.Itoa(e.Wordlines))
	}
	app("cfg")
	app(strconv.Itoa(cfg.Banks))
	app(strconv.Itoa(cfg.Ranks))
	app(strconv.FormatBool(cfg.PowerConstrained))
	app(strconv.FormatBool(cfg.ModelRefresh))
	tp := cfg.Timing
	for _, v := range []float64{
		tp.AccessSense, tp.Restore, tp.Precharge, tp.OverlapActivate,
		tp.PseudoPrechargeFactor, tp.TFAW, tp.Clock, tp.TREFI, tp.TRFC,
	} {
		app(f(v))
	}
	app(strconv.Itoa(tp.ActivatesPerTFAW))
	app(f(horizonNS))
	return string(b)
}

// Simulate returns the memoized result of Simulate(p, cfg, horizonNS),
// running the event-accurate simulation on the first miss.
func (c *Cache) Simulate(p OpProfile, cfg Config, horizonNS float64) (Result, error) {
	k := key(p, cfg, horizonNS)
	c.mu.RLock()
	res, ok := c.m[k]
	c.mu.RUnlock()
	if ok {
		return res, nil
	}
	res, err := Simulate(p, cfg, horizonNS)
	if err != nil {
		// Errors are cheap to recompute (validation fails before the
		// horizon loop) and carry no result worth caching.
		return Result{}, err
	}
	c.mu.Lock()
	c.m[k] = res
	c.mu.Unlock()
	return res, nil
}

// Len returns the number of cached results.
func (c *Cache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.m)
}

// Reset drops every cached result.
func (c *Cache) Reset() {
	c.mu.Lock()
	c.m = make(map[string]Result)
	c.mu.Unlock()
}

// defaultCache backs CachedSimulate: one process-wide memo shared by every
// accelerator and case study. Profiles and configs are tiny and the set of
// distinct (design, op, config) triples a process touches is small, so the
// cache stays bounded in practice.
var defaultCache = NewCache()

// CachedSimulate is Simulate memoized through the process-wide cache.
func CachedSimulate(p OpProfile, cfg Config, horizonNS float64) (Result, error) {
	return defaultCache.Simulate(p, cfg, horizonNS)
}

// ResetCache drops the process-wide memo (test hook / memory bound).
func ResetCache() { defaultCache.Reset() }

// CacheLen returns the process-wide memo's entry count (observability).
func CacheLen() int { return defaultCache.Len() }
