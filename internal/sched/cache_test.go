package sched

import (
	"sync"
	"testing"

	"repro/internal/timing"
)

func testProfile() OpProfile {
	return OpProfile{
		LatencyNS: 100,
		Events: []Event{
			{OffsetNS: 0, Wordlines: 1},
			{OffsetNS: 49, Wordlines: 3},
		},
	}
}

// TestCachedEqualsFresh: a cached result is bit-identical to a fresh
// simulation for representative configurations.
func TestCachedEqualsFresh(t *testing.T) {
	tp := timing.DDR31600()
	p := testProfile()
	cfgs := []Config{
		{Banks: 8, Timing: tp},
		{Banks: 8, Timing: tp, PowerConstrained: true},
		{Banks: 8, Timing: tp, PowerConstrained: true, Ranks: 2},
		{Banks: 8, Timing: tp, ModelRefresh: true},
	}
	c := NewCache()
	for _, cfg := range cfgs {
		fresh, err := Simulate(p, cfg, 200_000)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 2; i++ { // miss, then hit
			got, err := c.Simulate(p, cfg, 200_000)
			if err != nil {
				t.Fatal(err)
			}
			if got != fresh {
				t.Fatalf("cfg %+v pass %d: cached %+v != fresh %+v", cfg, i, got, fresh)
			}
		}
	}
	if c.Len() != len(cfgs) {
		t.Fatalf("cache has %d entries, want %d", c.Len(), len(cfgs))
	}
}

// TestCacheKeyDistinguishesConfigs: any input change must miss rather than
// alias — the memo's "invalidation on config change" property.
func TestCacheKeyDistinguishesConfigs(t *testing.T) {
	tp := timing.DDR31600()
	p := testProfile()
	c := NewCache()
	base := Config{Banks: 8, Timing: tp, PowerConstrained: true}
	if _, err := c.Simulate(p, base, 200_000); err != nil {
		t.Fatal(err)
	}
	variants := []func() (OpProfile, Config, float64){
		func() (OpProfile, Config, float64) { v := base; v.Banks = 4; return p, v, 200_000 },
		func() (OpProfile, Config, float64) { v := base; v.PowerConstrained = false; return p, v, 200_000 },
		func() (OpProfile, Config, float64) { v := base; v.Ranks = 2; return p, v, 200_000 },
		func() (OpProfile, Config, float64) { v := base; v.Timing.TFAW += 1; return p, v, 200_000 },
		func() (OpProfile, Config, float64) { v := base; v.Timing.ActivatesPerTFAW++; return p, v, 200_000 },
		func() (OpProfile, Config, float64) { return p, base, 300_000 },
		func() (OpProfile, Config, float64) {
			q := testProfile()
			q.Events[1].Wordlines = 1
			return q, base, 200_000
		},
	}
	want := 1
	for i, mk := range variants {
		q, cfg, h := mk()
		if _, err := c.Simulate(q, cfg, h); err != nil {
			t.Fatal(err)
		}
		want++
		if c.Len() != want {
			t.Fatalf("variant %d aliased an existing key (len %d, want %d)", i, c.Len(), want)
		}
		fresh, err := Simulate(q, cfg, h)
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.Simulate(q, cfg, h)
		if err != nil {
			t.Fatal(err)
		}
		if got != fresh {
			t.Fatalf("variant %d: cached %+v != fresh %+v", i, got, fresh)
		}
	}
}

// TestCacheErrorsNotCached: invalid inputs keep erroring and add no entry.
func TestCacheErrorsNotCached(t *testing.T) {
	c := NewCache()
	bad := OpProfile{LatencyNS: -1}
	if _, err := c.Simulate(bad, Config{Banks: 8, Timing: timing.DDR31600()}, 200_000); err == nil {
		t.Fatal("expected validation error")
	}
	if c.Len() != 0 {
		t.Fatalf("error was cached: len %d", c.Len())
	}
}

// TestCacheConcurrent hammers one cache from many goroutines (run with
// -race) and checks every result matches the fresh simulation.
func TestCacheConcurrent(t *testing.T) {
	tp := timing.DDR31600()
	p := testProfile()
	cfg := Config{Banks: 8, Timing: tp, PowerConstrained: true}
	fresh, err := Simulate(p, cfg, 200_000)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCache()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				got, err := c.Simulate(p, cfg, 200_000)
				if err != nil {
					t.Error(err)
					return
				}
				if got != fresh {
					t.Errorf("cached %+v != fresh %+v", got, fresh)
					return
				}
			}
		}()
	}
	wg.Wait()
	if c.Len() != 1 {
		t.Fatalf("cache has %d entries, want 1", c.Len())
	}
}

// TestResetCache: Reset empties the process-wide memo.
func TestResetCache(t *testing.T) {
	p := testProfile()
	cfg := Config{Banks: 8, Timing: timing.DDR31600()}
	if _, err := CachedSimulate(p, cfg, 200_000); err != nil {
		t.Fatal(err)
	}
	if CacheLen() == 0 {
		t.Fatal("process-wide cache empty after CachedSimulate")
	}
	ResetCache()
	if CacheLen() != 0 {
		t.Fatalf("ResetCache left %d entries", CacheLen())
	}
}

// TestCacheStats: hit/miss/eviction counters and the derived hit rate.
func TestCacheStats(t *testing.T) {
	tp := timing.DDR31600()
	p := testProfile()
	cfg := Config{Banks: 8, Timing: tp}
	c := NewCache()

	if s := c.Stats(); s != (CacheStats{}) {
		t.Fatalf("fresh cache stats = %+v, want zero", s)
	}
	if got := (CacheStats{}).HitRate(); got != 0 {
		t.Errorf("empty hit rate = %g, want 0", got)
	}

	if _, err := c.Simulate(p, cfg, 200_000); err != nil { // miss
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ { // hits
		if _, err := c.Simulate(p, cfg, 200_000); err != nil {
			t.Fatal(err)
		}
	}
	s := c.Stats()
	if s.Hits != 3 || s.Misses != 1 || s.Evictions != 0 || s.Entries != 1 {
		t.Errorf("stats = %+v, want 3 hits / 1 miss / 0 evictions / 1 entry", s)
	}
	if got := s.HitRate(); got != 0.75 {
		t.Errorf("hit rate = %g, want 0.75", got)
	}

	c.Reset()
	if s := c.Stats(); s.Evictions != 1 || s.Entries != 0 {
		t.Errorf("after reset: %+v, want 1 eviction / 0 entries", s)
	}
}

// TestCacheCapacityEviction: the entry bound evicts rather than grows.
func TestCacheCapacityEviction(t *testing.T) {
	tp := timing.DDR31600()
	cfg := Config{Banks: 8, Timing: tp}
	c := NewCacheCap(2)
	for i := 1; i <= 4; i++ {
		p := testProfile()
		p.LatencyNS = float64(100 * i) // distinct key per iteration
		if _, err := c.Simulate(p, cfg, 200_000); err != nil {
			t.Fatal(err)
		}
	}
	if c.Len() != 2 {
		t.Errorf("capped cache has %d entries, want 2", c.Len())
	}
	s := c.Stats()
	if s.Misses != 4 || s.Evictions != 2 {
		t.Errorf("stats = %+v, want 4 misses / 2 evictions", s)
	}

	// Unbounded (n < 1) never evicts.
	u := NewCacheCap(0)
	for i := 1; i <= 4; i++ {
		p := testProfile()
		p.LatencyNS = float64(100 * i)
		if _, err := u.Simulate(p, cfg, 200_000); err != nil {
			t.Fatal(err)
		}
	}
	if u.Len() != 4 || u.Stats().Evictions != 0 {
		t.Errorf("unbounded cache: len=%d evictions=%d", u.Len(), u.Stats().Evictions)
	}
}
