// Package sched models bank-level parallelism under the DRAM module's
// activation power constraint (tFAW / charge-pump budget).
//
// Every in-DRAM bitwise operation is a primitive sequence whose activation
// events draw wordline charge from a shared pump. Without the constraint,
// all banks compute concurrently; with it, the module can only sustain a
// bounded number of wordline activations per rolling window, so designs
// that raise more wordlines per operation (Ambit's TRA) lose bank-level
// parallelism first — the mechanism behind Figures 13(b) and 14(b).
package sched

import (
	"errors"
	"math"

	"repro/internal/primitive"
	"repro/internal/timing"
)

// Event is one activation event inside an operation.
type Event struct {
	// OffsetNS is the event's start offset from the operation start.
	OffsetNS float64
	// Wordlines is the number of wordlines this event raises (TRA: 3).
	Wordlines int
}

// OpProfile describes one row-wide operation for scheduling purposes.
type OpProfile struct {
	// LatencyNS is the total operation latency.
	LatencyNS float64
	// Events are the activation events in offset order.
	Events []Event
}

// Validate reports whether the profile is well-formed.
func (p OpProfile) Validate() error {
	if p.LatencyNS <= 0 {
		return errors.New("sched: profile latency must be positive")
	}
	prev := -1.0
	for _, e := range p.Events {
		if e.OffsetNS < prev {
			return errors.New("sched: events must be in offset order")
		}
		if e.OffsetNS > p.LatencyNS {
			return errors.New("sched: event offset beyond op latency")
		}
		if e.Wordlines <= 0 {
			return errors.New("sched: event wordlines must be positive")
		}
		prev = e.OffsetNS
	}
	return nil
}

// WordlinesPerOp returns the total wordlines per operation.
func (p OpProfile) WordlinesPerOp() int {
	n := 0
	for _, e := range p.Events {
		n += e.Wordlines
	}
	return n
}

// ProfileFromSeq derives an operation profile from a primitive sequence:
// each primitive contributes its activation events at the appropriate
// offsets inside the sequence.
func ProfileFromSeq(q primitive.Seq, tp timing.Params) OpProfile {
	var events []Event
	offset := 0.0
	for _, s := range q {
		switch s.Kind {
		case primitive.AP, primitive.APP, primitive.OAPP, primitive.TAPP, primitive.OTAPP:
			events = append(events, Event{OffsetNS: offset, Wordlines: 1})
		case primitive.TRAAP:
			events = append(events, Event{OffsetNS: offset, Wordlines: 3})
		case primitive.AAP:
			events = append(events,
				Event{OffsetNS: offset, Wordlines: 1},
				Event{OffsetNS: offset + tp.TRAS(), Wordlines: 1})
		case primitive.OAAP, primitive.APPM, primitive.OAPPM, primitive.NORCYCLE:
			events = append(events,
				Event{OffsetNS: offset, Wordlines: 1},
				Event{OffsetNS: offset + tp.OverlapActivate, Wordlines: 1})
		case primitive.TRAAAP:
			events = append(events,
				Event{OffsetNS: offset, Wordlines: 3},
				Event{OffsetNS: offset + tp.OverlapActivate, Wordlines: 1})
		}
		offset += s.Kind.Duration(tp)
	}
	return OpProfile{LatencyNS: offset, Events: events}
}

// Config parameterizes a scheduling run.
type Config struct {
	// Banks is the number of banks executing the operation concurrently.
	Banks int
	// Ranks divides the banks into groups, each with its OWN charge pump
	// and tFAW window (the JEDEC constraint is per rank). Zero means 1.
	// Banks must divide evenly into ranks.
	Ranks int
	// Timing supplies the tFAW window width and activation budget.
	Timing timing.Params
	// PowerConstrained toggles the charge-pump constraint. Without it all
	// banks run back-to-back operations.
	PowerConstrained bool
	// ModelRefresh stalls all banks for TRFC at every TREFI boundary —
	// the refresh tax a deployed module pays on top of everything else.
	ModelRefresh bool
}

// ranks returns the effective rank count.
func (c Config) ranks() int {
	if c.Ranks <= 0 {
		return 1
	}
	return c.Ranks
}

// Result summarizes steady-state throughput.
type Result struct {
	// OpsPerSecond is the module-wide row-operation rate.
	OpsPerSecond float64
	// EffectiveBanks is the average number of concurrently active banks
	// (module rate × op latency).
	EffectiveBanks float64
	// StallFraction is the fraction of wall-clock each bank spends stalled
	// waiting for activation budget.
	StallFraction float64
}

// Simulate runs banks executing the operation back-to-back over the
// horizon and returns the achieved throughput. The simulation is an
// event-accurate replay against the rolling activation window.
func Simulate(p OpProfile, cfg Config, horizonNS float64) (Result, error) {
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	if cfg.Banks <= 0 {
		return Result{}, errors.New("sched: Banks must be positive")
	}
	if err := cfg.Timing.Validate(); err != nil {
		return Result{}, err
	}
	if horizonNS <= 0 {
		return Result{}, errors.New("sched: horizon must be positive")
	}

	if cfg.Banks%cfg.ranks() != 0 {
		return Result{}, errors.New("sched: Banks must divide evenly into Ranks")
	}

	// One activation window (charge pump) per rank; bank i belongs to
	// rank i % ranks.
	var windows []*timing.ActivationWindow
	if cfg.PowerConstrained {
		windows = make([]*timing.ActivationWindow, cfg.ranks())
		for i := range windows {
			windows[i] = timing.NewActivationWindow(cfg.Timing.TFAW, cfg.Timing.ActivatesPerTFAW)
		}
	}

	type bankState struct {
		cursor float64 // current time inside the command stream
		event  int     // next event index within the running op
		ops    int
	}
	banks := make([]bankState, cfg.Banks)
	totalStall := 0.0

	// gaps[i] is the time from the previous event's issue to event i's
	// earliest possible issue; tail is latency after the last event.
	gaps := make([]float64, len(p.Events))
	prev := 0.0
	for i, e := range p.Events {
		gaps[i] = e.OffsetNS - prev
		prev = e.OffsetNS
	}
	tail := p.LatencyNS - prev

	for {
		// Pick the bank whose next action is earliest.
		best := -1
		bestT := horizonNS
		for i := range banks {
			if banks[i].cursor < bestT {
				bestT = banks[i].cursor
				best = i
			}
		}
		if best < 0 {
			break
		}
		if windows != nil {
			// No future query can be earlier than the minimum cursor;
			// older events can be discarded.
			for _, w := range windows {
				w.DiscardBefore(bestT)
			}
		}
		b := &banks[best]
		if len(p.Events) == 0 {
			b.cursor += p.LatencyNS
			b.ops++
			continue
		}
		desired := b.cursor + gaps[b.event]
		if cfg.ModelRefresh && cfg.Timing.TREFI > 0 {
			// Defer any command that would start inside a refresh blackout
			// to the blackout's end.
			phase := math.Mod(desired, cfg.Timing.TREFI)
			if phase < cfg.Timing.TRFC {
				d := desired + (cfg.Timing.TRFC - phase)
				totalStall += d - desired
				desired = d
			}
		}
		issue := desired
		if windows != nil {
			w := windows[best%cfg.ranks()]
			issue = w.EarliestIssue(desired, p.Events[b.event].Wordlines)
			w.Issue(issue, p.Events[b.event].Wordlines)
		}
		totalStall += issue - desired
		b.cursor = issue
		b.event++
		if b.event == len(p.Events) {
			b.event = 0
			b.cursor += tail
			b.ops++
		}
	}

	ops := 0
	for _, b := range banks {
		ops += b.ops
	}
	rate := float64(ops) / horizonNS // ops per ns
	return Result{
		OpsPerSecond:   rate * 1e9,
		EffectiveBanks: rate * p.LatencyNS,
		StallFraction:  totalStall / (float64(cfg.Banks) * horizonNS),
	}, nil
}

// AnalyticBanks returns the closed-form effective-bank count: the module
// sustains Budget/Window wordlines per ns; an operation demands
// WordlinesPerOp over LatencyNS per bank. The achievable concurrency is
// the smaller of the bank count and the supply/demand ratio.
func AnalyticBanks(p OpProfile, cfg Config) float64 {
	if !cfg.PowerConstrained {
		return float64(cfg.Banks)
	}
	// Each rank has its own pump, so supply scales with the rank count.
	supply := float64(cfg.ranks()) * float64(cfg.Timing.ActivatesPerTFAW) / cfg.Timing.TFAW
	demand := float64(p.WordlinesPerOp()) / p.LatencyNS
	limit := supply / demand
	if limit > float64(cfg.Banks) {
		return float64(cfg.Banks)
	}
	return limit
}
