package elp2im

import (
	"testing"

	"repro/internal/vertical"
)

// splitmix64 is the fuzz operand PRNG: deterministic per seed, cheap,
// and independent of math/rand's stream evolution.
func splitmix64(s *uint64) uint64 {
	*s += 0x9e3779b97f4a7c15
	z := *s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// FuzzVerticalArith is the vertical-arithmetic differential fuzz target:
// random (op, width, length, operands) executed on all three engine
// designs at 1 and 4 shards, each result compared bit-for-bit against
// the host uint64 reference.
func FuzzVerticalArith(f *testing.F) {
	f.Add(uint8(0), uint8(8), uint16(130), uint64(1))  // add
	f.Add(uint8(1), uint8(13), uint16(65), uint64(2))  // sub, ragged
	f.Add(uint8(2), uint8(5), uint16(200), uint64(3))  // lt
	f.Add(uint8(3), uint8(32), uint16(64), uint64(4))  // le
	f.Add(uint8(4), uint8(9), uint16(129), uint64(5))  // eq
	f.Add(uint8(5), uint8(6), uint16(100), uint64(6))  // lts
	f.Add(uint8(6), uint8(4), uint16(190), uint64(7))  // les
	f.Add(uint8(7), uint8(16), uint16(128), uint64(8)) // popcount
	f.Add(uint8(8), uint8(3), uint16(77), uint64(9))   // select
	f.Add(uint8(0), uint8(64), uint16(33), uint64(10)) // full-width carry chain
	f.Fuzz(func(t *testing.T, opc, wc uint8, nc uint16, seed uint64) {
		op := ArithOp(int(opc) % vertical.NumOps)
		w := int(wc)%64 + 1
		n := int(nc)%220 + 1
		s := seed
		x := make([]uint64, n)
		y := make([]uint64, n)
		for i := range x {
			x[i] = splitmix64(&s)
			y[i] = splitmix64(&s)
		}
		m := NewBitVector(n)
		for i := 0; i < n; i++ {
			m.SetBit(i, splitmix64(&s)&1 != 0)
		}
		want := vertical.Reference(op.internalV(), w, x, y, m.Words())

		xv, err := VerticalFromElements(x, w)
		if err != nil {
			t.Fatal(err)
		}
		var yv *Vertical
		if op.Binary() {
			if yv, err = VerticalFromElements(y, w); err != nil {
				t.Fatal(err)
			}
		}
		var mask *BitVector
		if op.Masked() {
			mask = m
		}
		ca, err := CompileArith(op, w)
		if err != nil {
			t.Fatal(err)
		}

		var first Stats
		for di, d := range []Design{DesignELP2IM, DesignAmbit, DesignDrisaNOR} {
			design := func(c *Config) { c.Design = d }
			acc := newAcc(t, smallModule, design)
			sh, err := NewShard(4, smallModule, design)
			if err != nil {
				t.Fatal(err)
			}
			out1, st1, err := acc.ArithProg(ca, xv, yv, mask)
			if err != nil {
				t.Fatalf("%s %s/%d: %v", d, op, w, err)
			}
			out4, st4, err := sh.ArithProg(ca, xv, yv, mask)
			if err != nil {
				t.Fatalf("%s shard4 %s/%d: %v", d, op, w, err)
			}
			if st1 != st4 {
				t.Fatalf("%s %s/%d: shard stats %+v != single %+v", d, op, w, st4, st1)
			}
			if di == 0 {
				first = st1
			}
			_ = first
			for tag, out := range map[string]*Vertical{"1": out1, "4": out4} {
				got := out.Elements()
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("%s shards=%s %s/%d element %d: %#x, want %#x",
							d, tag, op, w, i, got[i], want[i])
					}
				}
			}
		}
	})
}
