package elp2im

import (
	"io"
	"time"

	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/sched"
)

// Observability surface of the facade. Every Accelerator owns an
// internal/obs context: per-op-kind counters and modeled latency/energy
// histograms, batch-pipeline gauges, per-subarray-lock contention
// counters, and an optional structured-span tracer. The process-wide
// scheduler memo's hit/miss/eviction counters are folded into every
// snapshot under sched.cache.*.
//
// Metric names are documented in DESIGN.md §10; with no tracer installed
// (the default) the span paths never run, never read the clock, and
// allocate nothing.

// Tracer receives structured span events (see obs.SpanEvent); install one
// with Accelerator.SetTracer. Implementations must be safe for concurrent
// use.
type Tracer = obs.Tracer

// SpanEvent is one structured span delivered to a Tracer.
type SpanEvent = obs.SpanEvent

// NopTracer is a Tracer that discards every event without allocating.
type NopTracer = obs.NopTracer

// JSONLTracer streams spans as Chrome trace_event JSON lines; the output
// loads in chrome://tracing / Perfetto.
type JSONLTracer = obs.JSONLTracer

// NewJSONLTracer returns a tracer streaming Chrome trace_event lines to w.
// Close it (after draining all work) to terminate the JSON array.
func NewJSONLTracer(w io.Writer) *JSONLTracer { return obs.NewJSONLTracer(w) }

// MetricsSnapshot is a plain-value copy of an accelerator's (or the
// process-wide) metric series.
type MetricsSnapshot = obs.Snapshot

// HistogramSnapshot is the plain-value copy of one histogram series.
type HistogramSnapshot = obs.HistogramSnapshot

// DebugServer is a running expvar/pprof/metrics HTTP endpoint.
type DebugServer = obs.DebugServer

// opSeries is one op kind's pre-resolved metric series plus its span
// label, so the hot path is pure atomic updates with zero allocations.
type opSeries struct {
	spanName  string
	count     *obs.Counter
	rowOps    *obs.Counter
	commands  *obs.Counter
	wordlines *obs.Counter
	latency   *obs.Histogram
	energy    *obs.Histogram
}

// opSeriesSet holds one opSeries per op kind — the per-op accounting
// surface shared by the Accelerator and the Shard router (which accounts
// scattered operations centrally, in its own registry).
type opSeriesSet [engine.OpCOPY + 1]opSeries

// init resolves the series in m under the canonical acc.op.* names.
func (set *opSeriesSet) init(m *obs.Registry) {
	for op := engine.OpNOT; op <= engine.OpCOPY; op++ {
		name := op.String()
		set[op] = opSeries{
			spanName:  "Op(" + name + ")",
			count:     m.Counter("acc.op.count." + name),
			rowOps:    m.Counter("acc.op.rowops." + name),
			commands:  m.Counter("acc.op.commands." + name),
			wordlines: m.Counter("acc.op.wordlines." + name),
			latency:   m.Histogram("acc.op.latency_ns."+name, obs.LatencyBuckets()),
			energy:    m.Histogram("acc.op.energy_nj."+name, obs.EnergyBuckets()),
		}
	}
}

// record folds one operation component's modeled cost into the per-op
// metric series (called wherever session totals are updated, so
// synchronous, batched, and sharded paths account identically).
func (set *opSeriesSet) record(op engine.Op, st Stats) {
	s := &set[op]
	s.count.Inc()
	s.rowOps.Add(int64(st.RowOps))
	s.commands.Add(int64(st.Commands))
	s.wordlines.Add(int64(st.Wordlines))
	s.latency.Observe(st.LatencyNS)
	s.energy.Observe(st.EnergyNJ)
}

// initObs builds the accelerator's observability context: the per-op
// series, the lock/batch counters, and the engine instrumentation.
func (a *Accelerator) initObs() {
	a.obsc = obs.NewContext()
	m := a.obsc.Metrics
	a.series.init(m)
	a.lockAcquire = m.Counter("acc.lock.acquire")
	a.lockContended = m.Counter("acc.lock.contended")
	a.batchSubmitted = m.Counter("batch.submitted")
	a.batchWaits = m.Counter("batch.waits")
	a.fastHits = m.Counter("acc.fastpath.hit")
	a.fastFallbacks = m.Counter("acc.fastpath.fallback")
	a.fusionHits = m.Counter("acc.fusion.hit")
	a.fusionFalls = m.Counter("acc.fusion.fallback")
	if ie, ok := a.eng.(interface{ Instrument(*obs.Context) }); ok {
		ie.Instrument(a.obsc)
	}
}

// record folds one operation component's modeled cost into the per-op
// metric series.
func (a *Accelerator) record(op engine.Op, st Stats) { a.series.record(op, st) }

// opSpan emits the facade-level span of one completed operation when
// tracing is on (startNS != 0 is SpanStart's signal).
func (a *Accelerator) opSpan(startNS int64, op engine.Op, stripes int, st Stats, err error) {
	if startNS == 0 {
		return
	}
	msg := ""
	if err != nil {
		msg = err.Error()
	}
	a.obsc.Span(obs.SpanEvent{
		Name:      a.series[op].spanName,
		Cat:       "facade",
		StartNS:   startNS,
		DurNS:     time.Now().UnixNano() - startNS,
		Op:        op.String(),
		Design:    a.eng.Name(),
		Stripes:   stripes,
		LatencyNS: st.LatencyNS,
		EnergyNJ:  st.EnergyNJ,
		Commands:  st.Commands,
		Wordlines: st.Wordlines,
		Err:       msg,
	})
}

// reduceSpan emits the facade-level span of one Reduce call when tracing
// is on. The string concatenation only runs on the traced path.
func (a *Accelerator) reduceSpan(startNS int64, op engine.Op, stripes int, st Stats, err error) {
	if startNS == 0 {
		return
	}
	msg := ""
	if err != nil {
		msg = err.Error()
	}
	a.obsc.Span(obs.SpanEvent{
		Name:      "Reduce(" + op.String() + ")",
		Cat:       "facade",
		StartNS:   startNS,
		DurNS:     time.Now().UnixNano() - startNS,
		Op:        op.String(),
		Design:    a.eng.Name(),
		Stripes:   stripes,
		LatencyNS: st.LatencyNS,
		EnergyNJ:  st.EnergyNJ,
		Commands:  st.Commands,
		Wordlines: st.Wordlines,
		Err:       msg,
	})
}

// stripeSpan emits one stripe execution's span (TID = stripe index) when
// tracing is on.
func (a *Accelerator) stripeSpan(startNS int64, s int, err error) {
	if startNS == 0 {
		return
	}
	msg := ""
	if err != nil {
		msg = err.Error()
	}
	a.obsc.Span(obs.SpanEvent{
		Name:    "stripe",
		Cat:     "stripe",
		TID:     int64(s),
		StartNS: startNS,
		DurNS:   time.Now().UnixNano() - startNS,
		Design:  a.eng.Name(),
		Err:     msg,
	})
}

// SetTracer installs (or, with nil, removes) a tracer receiving structured
// span events for every facade op, batch task, stripe execution, and
// engine primitive sequence on this accelerator. Safe to call while
// operations are in flight.
func (a *Accelerator) SetTracer(t Tracer) { a.obsc.SetTracer(t) }

// Observability returns the accelerator's internal observability context,
// so in-module subsystems layered on top of the facade (internal/server)
// can register their own metric series and emit spans into the same
// registry — making them visible on this accelerator's Snapshot and
// ServeDebug endpoint alongside the op/engine/pipeline series.
func (a *Accelerator) Observability() *obs.Context { return a.obsc }

// withSchedStats folds the process-wide scheduler-memo counters into s.
func withSchedStats(s obs.Snapshot) obs.Snapshot {
	cs := sched.GlobalCacheStats()
	s.Counters["sched.cache.hits"] = cs.Hits
	s.Counters["sched.cache.misses"] = cs.Misses
	s.Counters["sched.cache.evictions"] = cs.Evictions
	s.Gauges["sched.cache.entries"] = cs.Entries
	return s
}

// Snapshot copies the accelerator's metric series — per-op-kind counts,
// modeled latency/energy histograms, command/activation counters, batch
// pipeline gauges, lock contention — plus the process-wide scheduler-memo
// counters (sched.cache.*), for programmatic scraping. Safe to call while
// operations and batches are in flight.
func (a *Accelerator) Snapshot() MetricsSnapshot {
	return withSchedStats(a.obsc.Metrics.Snapshot())
}

// GlobalSnapshot copies the process-wide metric series: engines and worker
// pools not owned by an Accelerator (standalone engine use, the case-study
// runners) report here, and the scheduler memo's counters are always
// included. cmd/elpsim's -metrics flag prints this.
func GlobalSnapshot() MetricsSnapshot {
	return withSchedStats(obs.Global().Metrics.Snapshot())
}

// SetGlobalTracer installs (or, with nil, removes) a tracer on the
// process-wide observability context used by standalone engines and
// worker pools (cmd/elpsim's -trace flag).
func SetGlobalTracer(t Tracer) { obs.Global().SetTracer(t) }

// ServeDebug starts the opt-in observability endpoint on addr (":0" for
// an ephemeral port): /metrics serves this accelerator's Snapshot as text
// (or JSON with ?format=json), /debug/vars serves expvar including the
// snapshot, and /debug/pprof/* serves the standard Go profiler. The
// caller owns the returned server and must Close it.
func (a *Accelerator) ServeDebug(addr string) (*DebugServer, error) {
	return obs.Serve(addr, func() obs.Snapshot { return a.Snapshot() })
}
