package elp2im

// One benchmark per table and figure of the paper's evaluation (§6).
// Each bench regenerates its artifact's underlying computation and
// reports the paper-relevant modeled quantities via b.ReportMetric, so
// `go test -bench=. -benchmem` doubles as the reproduction run.

import (
	"fmt"
	"io"
	"math/rand"
	"testing"

	"repro/internal/ambit"
	"repro/internal/analog"
	"repro/internal/apps/bitmap"
	"repro/internal/apps/cnn"
	"repro/internal/apps/tablescan"
	"repro/internal/bitvec"
	"repro/internal/cpu"
	"repro/internal/dram"
	"repro/internal/drisa"
	"repro/internal/elpim"
	"repro/internal/engine"
	"repro/internal/exp"
	"repro/internal/power"
	"repro/internal/primitive"
	"repro/internal/sched"
	"repro/internal/timing"
)

// BenchmarkTable1Primitives regenerates Table 1's primitive latencies.
func BenchmarkTable1Primitives(b *testing.B) {
	tp := timing.DDR31600()
	kinds := []primitive.Kind{
		primitive.AP, primitive.AAP, primitive.OAAP,
		primitive.APP, primitive.OAPP, primitive.TAPP, primitive.OTAPP,
	}
	var total float64
	for i := 0; i < b.N; i++ {
		total = 0
		for _, k := range kinds {
			total += k.Duration(tp)
		}
	}
	b.ReportMetric(total, "sum_ns")
	b.ReportMetric(primitive.AP.Duration(tp), "AP_ns")
	b.ReportMetric(primitive.APP.Duration(tp), "APP_ns")
}

// BenchmarkFig8XORSequences regenerates the Figure 8 optimization ladder.
func BenchmarkFig8XORSequences(b *testing.B) {
	cfg1 := elpim.DefaultConfig()
	cfg2 := elpim.DefaultConfig()
	cfg2.ReservedRows = 2
	e1 := elpim.MustNew(cfg1)
	e2 := elpim.MustNew(cfg2)
	var seq5, seq6 float64
	for i := 0; i < b.N; i++ {
		seq5 = e1.OpStats(engine.OpXOR).LatencyNS
		seq6 = e2.OpStats(engine.OpXOR).LatencyNS
	}
	b.ReportMetric(seq5, "seq5_ns") // paper: ~346
	b.ReportMetric(seq6, "seq6_ns") // paper: ~297
}

// BenchmarkFig10Waveform simulates the APP-AP circuit traces.
func BenchmarkFig10Waveform(b *testing.B) {
	c := analog.Default()
	tp := timing.DDR31600()
	var samples int
	for i := 0; i < b.N; i++ {
		wf := analog.SimulateAPPAP(c, tp, analog.TwoCycleOR, true, false)
		samples = len(wf.Samples)
	}
	b.ReportMetric(float64(samples), "samples")
}

// BenchmarkFig11ErrorRate runs the Monte-Carlo reliability comparison at
// σ = 6% under random process variation.
func BenchmarkFig11ErrorRate(b *testing.B) {
	c := analog.Default()
	const trials = 4000
	var ambitRate, elpRate float64
	for i := 0; i < b.N; i++ {
		ambitRate = analog.ErrorRate(c, analog.DeviceAmbit, analog.VariationRandom, 0.06, trials, 42)
		elpRate = analog.ErrorRate(c, analog.DeviceELP2IM, analog.VariationRandom, 0.06, trials, 42)
	}
	b.ReportMetric(ambitRate, "ambit_err")
	b.ReportMetric(elpRate, "elp2im_err")
}

// fig12 engines shared by the basic-op benches.
func fig12Engines(b *testing.B) (engine.Engine, engine.Engine, engine.Engine) {
	b.Helper()
	return drisa.MustNew(drisa.DefaultConfig()),
		ambit.MustNew(ambit.DefaultConfig()),
		elpim.MustNew(elpim.DefaultConfig())
}

// BenchmarkFig12BasicOps regenerates the latency/power comparison and
// exercises each engine's functional execution of every basic op on the
// device model.
func BenchmarkFig12BasicOps(b *testing.B) {
	dr, am, el := fig12Engines(b)
	pp := power.DDR31600()
	cfg := dram.Config{
		Banks: 1, SubarraysPerBank: 1,
		RowsPerSubarray: 16, Columns: 2048, DualContactRows: 2,
	}
	engines := []engine.Engine{dr, am, el}
	rng := rand.New(rand.NewSource(1))

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, e := range engines {
			sub := dram.NewSubarray(cfg)
			sub.LoadRow(0, randomRow(rng, cfg.Columns))
			sub.LoadRow(1, randomRow(rng, cfg.Columns))
			for _, op := range engine.BasicOps() {
				if err := e.Execute(sub, op, 2, 0, 1); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.StopTimer()

	avgSpeedup := func(base engine.Engine) float64 {
		total := 0.0
		for _, op := range engine.BasicOps() {
			total += base.OpStats(op).LatencyNS / el.OpStats(op).LatencyNS
		}
		return total / 7
	}
	b.ReportMetric(avgSpeedup(am), "vsAmbit_x") // paper: 1.17
	b.ReportMetric(avgSpeedup(dr), "vsDrisa_x") // paper: 1.12
	// Per-op average power (Figure 12(b)): ELP2IM a few percent below Ambit.
	avgPower := func(e engine.Engine) float64 {
		total := 0.0
		for _, op := range engine.BasicOps() {
			st := e.OpStats(op)
			total += (st.EnergyNJ + pp.BackgroundPower*e.BackgroundFactor()*st.LatencyNS) / st.LatencyNS
		}
		return total / 7
	}
	b.ReportMetric(avgPower(el), "elp2im_W")
	b.ReportMetric(avgPower(am), "ambit_W")
}

// BenchmarkFig13Bitmap regenerates the bitmap case study (both power
// regimes).
func BenchmarkFig13Bitmap(b *testing.B) {
	wl := bitmap.Default()
	mod := dram.Default()
	tp := timing.DDR31600()
	m := cpu.KabyLake()
	e := elpim.MustNew(elpim.DefaultConfig())
	acfg := ambit.DefaultConfig()
	am := ambit.MustNew(acfg)

	var eCon, aCon bitmap.Result
	for i := 0; i < b.N; i++ {
		var err error
		eCon, err = bitmap.Run(wl, e, mod, tp, power.DDR31600(), m, true)
		if err != nil {
			b.Fatal(err)
		}
		aCon, err = bitmap.Run(wl, am, mod, tp, power.DDR31600(), m, true)
		if err != nil {
			b.Fatal(err)
		}
	}
	base, err := bitmap.RunCPU(wl, m)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(eCon.SpeedupOver(base), "elp2im_vs_cpu_x")
	b.ReportMetric(aCon.SpeedupOver(base), "ambit_vs_cpu_x")
	b.ReportMetric(eCon.EffectiveBanks, "elp2im_banks")
	b.ReportMetric(aCon.EffectiveBanks, "ambit_banks")
}

// BenchmarkFig14TableScan regenerates the table-scan sweep at width 8.
func BenchmarkFig14TableScan(b *testing.B) {
	wl := tablescan.Default(8)
	mod := dram.Default()
	tp := timing.DDR31600()
	m := cpu.KabyLake()
	designs := []tablescan.Design{
		elpim.MustNew(elpim.DefaultConfig()),
		ambit.MustNew(ambit.DefaultConfig()),
		drisa.MustNew(drisa.DefaultConfig()),
	}
	results := make([]tablescan.Result, len(designs))
	for i := 0; i < b.N; i++ {
		for j, d := range designs {
			r, err := tablescan.Run(wl, d, mod, tp, m)
			if err != nil {
				b.Fatal(err)
			}
			results[j] = r
		}
	}
	base, err := tablescan.RunCPU(wl, m)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(results[0].SpeedupOver(base), "elp2im_vs_cpu_x")
	b.ReportMetric(results[1].SpeedupOver(base), "ambit_vs_cpu_x")
	b.ReportMetric(results[2].SpeedupOver(base), "drisa_vs_cpu_x")
}

func cnnDesigns(b *testing.B) (cnn.Design, cnn.Design, cnn.Design) {
	b.Helper()
	ecfg := elpim.DefaultConfig()
	ecfg.ReservedRows = 2
	return ambit.MustNew(ambit.DefaultConfig()),
		elpim.MustNew(ecfg),
		drisa.MustNew(drisa.DefaultConfig())
}

// BenchmarkTable2Dracc regenerates the ternary-weight CNN table.
func BenchmarkTable2Dracc(b *testing.B) {
	a, e, d := cnnDesigns(b)
	var rows []cnn.TableRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = cnn.Table2(a, e, d, cnn.DefaultAccel())
		if err != nil {
			b.Fatal(err)
		}
	}
	avg := 0.0
	for _, r := range rows {
		avg += r.ELP2IMImprovement
	}
	b.ReportMetric(avg/float64(len(rows)), "elp2im_improve_x") // paper: ~1.12
}

// BenchmarkTable3NID regenerates the binary CNN table.
func BenchmarkTable3NID(b *testing.B) {
	a, e, d := cnnDesigns(b)
	var rows []cnn.TableRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = cnn.Table3(a, e, d, cnn.DefaultAccel())
		if err != nil {
			b.Fatal(err)
		}
	}
	avg := 0.0
	for _, r := range rows {
		avg += r.ELP2IMImprovement
	}
	b.ReportMetric(avg/float64(len(rows)), "elp2im_improve_x") // paper: ~1.26
}

// BenchmarkAcceleratorBulkAND measures the library's end-to-end bulk-op
// throughput (simulator performance, not modeled DRAM time): one 8 Mbit
// AND through the full device model per iteration.
func BenchmarkAcceleratorBulkAND(b *testing.B) {
	acc, err := New()
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	const n = 1 << 23
	x := RandomBitVector(rng, n)
	y := RandomBitVector(rng, n)
	dst := NewBitVector(n)
	b.SetBytes(n / 8)
	b.ResetTimer()
	var st Stats
	for i := 0; i < b.N; i++ {
		st, err = acc.Op(OpAnd, dst, x, y)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(st.LatencyNS/1e3, "modeled_us")
}

// BenchmarkAcceleratorBulkANDFallback is the same 8 Mbit AND forced
// through the command-accurate device model (DisableFastpath) — the
// pre-kernel baseline the fast path's speedup is measured against.
func BenchmarkAcceleratorBulkANDFallback(b *testing.B) {
	acc, err := New(func(c *Config) { c.DisableFastpath = true })
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	const n = 1 << 23
	x := RandomBitVector(rng, n)
	y := RandomBitVector(rng, n)
	dst := NewBitVector(n)
	b.SetBytes(n / 8)
	b.ResetTimer()
	var st Stats
	for i := 0; i < b.N; i++ {
		st, err = acc.Op(OpAnd, dst, x, y)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(st.LatencyNS/1e3, "modeled_us")
}

// BenchmarkOp measures the facade's per-call overhead on a small vector
// (one stripe per bank): the observability acceptance gate — with the
// default no-op tracer this path must allocate nothing in obs code and
// stay within noise of the pre-observability baseline.
func BenchmarkOp(b *testing.B) {
	acc, err := New()
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	const n = 1 << 16
	x := RandomBitVector(rng, n)
	y := RandomBitVector(rng, n)
	dst := NewBitVector(n)
	b.SetBytes(n / 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := acc.Op(OpAnd, dst, x, y); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExperimentHarness regenerates every §6 artifact end to end.
func BenchmarkExperimentHarness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := exp.RunAll(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// randomRow builds a random device-model row.
func randomRow(rng *rand.Rand, cols int) *bitvec.Vector {
	return bitvec.Random(rng, cols)
}

// BenchmarkAblationIsolation quantifies the §4.2.1 isolation-transistor
// optimization (APP → oAPP) on the XOR sequence.
func BenchmarkAblationIsolation(b *testing.B) {
	with := elpim.MustNew(elpim.DefaultConfig())
	cfg := elpim.DefaultConfig()
	cfg.UseIsolation = false
	without := elpim.MustNew(cfg)
	var on, off float64
	for i := 0; i < b.N; i++ {
		on = with.OpStats(engine.OpXOR).LatencyNS
		off = without.OpStats(engine.OpXOR).LatencyNS
	}
	b.ReportMetric(on, "with_ns")
	b.ReportMetric(off, "without_ns")
	b.ReportMetric(1-on/off, "saving_frac")
}

// BenchmarkAblationRestoreTruncation quantifies the §4.2.2 tAPP/otAPP
// optimization on the XOR sequence.
func BenchmarkAblationRestoreTruncation(b *testing.B) {
	with := elpim.MustNew(elpim.DefaultConfig())
	cfg := elpim.DefaultConfig()
	cfg.UseRestoreTruncation = false
	without := elpim.MustNew(cfg)
	var on, off float64
	for i := 0; i < b.N; i++ {
		on = with.OpStats(engine.OpXOR).LatencyNS
		off = without.OpStats(engine.OpXOR).LatencyNS
	}
	b.ReportMetric(on, "with_ns")
	b.ReportMetric(off, "without_ns")
	b.ReportMetric(1-on/off, "saving_frac")
}

// BenchmarkAblationSecondReservedRow quantifies the §4.2.3 extra buffer
// (XOR sequence 5 → sequence 6).
func BenchmarkAblationSecondReservedRow(b *testing.B) {
	one := elpim.MustNew(elpim.DefaultConfig())
	cfg := elpim.DefaultConfig()
	cfg.ReservedRows = 2
	two := elpim.MustNew(cfg)
	var s5, s6 float64
	for i := 0; i < b.N; i++ {
		s5 = one.OpStats(engine.OpXOR).LatencyNS
		s6 = two.OpStats(engine.OpXOR).LatencyNS
	}
	b.ReportMetric(s5, "seq5_ns")
	b.ReportMetric(s6, "seq6_ns")
}

// BenchmarkAblationExecutionModes compares the reduced-latency and
// high-throughput modes under the power constraint — the Figure 5 strategy
// trade-off.
func BenchmarkAblationExecutionModes(b *testing.B) {
	tp := timing.DDR31600()
	rl := elpim.MustNew(elpim.DefaultConfig())
	cfg := elpim.DefaultConfig()
	cfg.Mode = elpim.HighThroughput
	ht := elpim.MustNew(cfg)
	var rlRate, htRate float64
	for i := 0; i < b.N; i++ {
		for _, pair := range []struct {
			e    *elpim.Engine
			rate *float64
		}{{rl, &rlRate}, {ht, &htRate}} {
			p := sched.ProfileFromSeq(pair.e.Compile(engine.OpAND), tp)
			res, err := sched.Simulate(p, sched.Config{
				Banks: 8, Timing: tp, PowerConstrained: true,
			}, 200_000)
			if err != nil {
				b.Fatal(err)
			}
			*pair.rate = res.OpsPerSecond / 1e6
		}
	}
	b.ReportMetric(rlRate, "reduced_latency_Mops")
	b.ReportMetric(htRate, "high_throughput_Mops")
}

// BenchmarkAblationStrategyReliability compares the regular and
// complementary pseudo-precharge strategies' error rates (§4.1).
func BenchmarkAblationStrategyReliability(b *testing.B) {
	c := analog.Default()
	var reg, comp float64
	for i := 0; i < b.N; i++ {
		reg = analog.ErrorRate(c, analog.DeviceELP2IM, analog.VariationRandom, 0.12, 4000, 42)
		comp = analog.ErrorRate(c, analog.DeviceELP2IMComplementary, analog.VariationRandom, 0.12, 4000, 42)
	}
	b.ReportMetric(reg, "regular_err")
	b.ReportMetric(comp, "complementary_err")
}

// BenchmarkAblationRefresh quantifies the refresh-tax extension.
func BenchmarkAblationRefresh(b *testing.B) {
	tp := timing.DDR31600()
	e := elpim.MustNew(elpim.DefaultConfig())
	p := sched.ProfileFromSeq(e.Compile(engine.OpAND), tp)
	var base, withRef float64
	for i := 0; i < b.N; i++ {
		r1, err := sched.Simulate(p, sched.Config{Banks: 8, Timing: tp}, 200_000)
		if err != nil {
			b.Fatal(err)
		}
		r2, err := sched.Simulate(p, sched.Config{Banks: 8, Timing: tp, ModelRefresh: true}, 200_000)
		if err != nil {
			b.Fatal(err)
		}
		base, withRef = r1.OpsPerSecond, r2.OpsPerSecond
	}
	b.ReportMetric(1-withRef/base, "refresh_loss_frac")
}

// BenchmarkEngineSimulation measures the simulator's functional execution
// throughput per design: one full basic-op sweep on an 8K-column subarray
// per iteration.
func BenchmarkEngineSimulation(b *testing.B) {
	cfg := dram.Config{
		Banks: 1, SubarraysPerBank: 1,
		RowsPerSubarray: 16, Columns: 8192, DualContactRows: 2,
	}
	engines := map[string]engine.Engine{
		"ELP2IM": elpim.MustNew(elpim.DefaultConfig()),
		"Ambit":  ambit.MustNew(ambit.DefaultConfig()),
		"Drisa":  drisa.MustNew(drisa.DefaultConfig()),
	}
	for name, e := range engines {
		b.Run(name, func(b *testing.B) {
			sub := dram.NewSubarray(cfg)
			rng := rand.New(rand.NewSource(1))
			sub.LoadRow(0, randomRow(rng, cfg.Columns))
			sub.LoadRow(1, randomRow(rng, cfg.Columns))
			b.SetBytes(int64(cfg.Columns / 8 * 7)) // bits processed per sweep
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, op := range engine.BasicOps() {
					if err := e.Execute(sub, op, 2, 0, 1); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// benchAcc builds a full-size accelerator for the pipeline benchmarks.
func benchAcc(b *testing.B, mutators ...func(*Config)) *Accelerator {
	b.Helper()
	acc, err := New(mutators...)
	if err != nil {
		b.Fatal(err)
	}
	return acc
}

// BenchmarkPipelinePerCallUncached is the seed-equivalent baseline: every
// Op re-simulates its scheduling profile (DisableSchedCache bypasses both
// the process-wide scheduler memo and the per-accelerator cost memo).
func BenchmarkPipelinePerCallUncached(b *testing.B) {
	acc := benchAcc(b, func(c *Config) { c.DisableSchedCache = true })
	n := acc.cfg.Module.Columns
	rng := rand.New(rand.NewSource(1))
	x := RandomBitVector(rng, n)
	y := RandomBitVector(rng, n)
	dst := NewBitVector(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := acc.Op(OpAnd, dst, x, y); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPipelinePerCallCached: the synchronous path with the scheduler
// and cost memos on (the default).
func BenchmarkPipelinePerCallCached(b *testing.B) {
	acc := benchAcc(b)
	n := acc.cfg.Module.Columns
	rng := rand.New(rand.NewSource(1))
	x := RandomBitVector(rng, n)
	y := RandomBitVector(rng, n)
	dst := NewBitVector(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := acc.Op(OpAnd, dst, x, y); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPipelineBatchCached: b.N ops submitted through one batch and
// drained once. Distinct destinations keep the stripe groups independent.
func BenchmarkPipelineBatchCached(b *testing.B) {
	acc := benchAcc(b)
	n := acc.cfg.Module.Columns
	rng := rand.New(rand.NewSource(1))
	x := RandomBitVector(rng, n)
	y := RandomBitVector(rng, n)
	dsts := make([]*BitVector, 64)
	for i := range dsts {
		dsts[i] = NewBitVector(n)
	}
	b.ResetTimer()
	bt := acc.Batch()
	for i := 0; i < b.N; i++ {
		bt.Submit(OpAnd, dsts[i%len(dsts)], x, y)
	}
	if _, err := bt.Wait(); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	bt.Close()
}

// evalBenchExpr builds a complete binary gate tree of the given depth
// over variables a–h. Leaves cycle through the eight variables and the
// operator cycles &, |, ^ per gate in post order, so sibling subtrees
// are structurally distinct and CSE cannot collapse the tree.
func evalBenchExpr(depth int) string {
	leaf, gate := 0, 0
	ops := []string{"&", "|", "^"}
	var build func(d int) string
	build = func(d int) string {
		if d == 0 {
			v := string(rune('a' + leaf%8))
			leaf++
			return v
		}
		l, r := build(d-1), build(d-1)
		op := ops[gate%3]
		gate++
		return "(" + l + " " + op + " " + r + ")"
	}
	return build(depth)
}

// BenchmarkEvalDAG sweeps expression-DAG depth (a depth-d tree has 2^d-1
// gates) through the two word-level execution tiers: fused cluster
// kernels (default) vs node-at-a-time kernels (DisableFusion). The fused
// tier's win is memory traffic — one blockwise pass per plan cluster
// instead of one full-vector pass per gate — so the speedup grows with
// gates-per-cluster. bench.sh part 5 turns this sweep into
// BENCH_eval.json.
func BenchmarkEvalDAG(b *testing.B) {
	tiers := []struct {
		name   string
		mutate []func(*Config)
	}{
		{"fused", nil},
		{"nodekernel", []func(*Config){func(c *Config) { c.DisableFusion = true }}},
	}
	for _, depth := range []int{1, 2, 3, 4, 5, 6} {
		src := evalBenchExpr(depth)
		ce, err := CompileExpr(src)
		if err != nil {
			b.Fatal(err)
		}
		const n = 1 << 20
		rng := rand.New(rand.NewSource(int64(depth)))
		vars := map[string]*BitVector{}
		for _, name := range ce.Vars() {
			vars[name] = RandomBitVector(rng, n)
		}
		for _, tier := range tiers {
			b.Run(fmt.Sprintf("depth%d/%s", depth, tier.name), func(b *testing.B) {
				acc, err := New(tier.mutate...)
				if err != nil {
					b.Fatal(err)
				}
				b.SetBytes(n / 8)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, _, err := acc.EvalExpr(ce, vars); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
