package elp2im

// Eval differential suite: every expression in the corpus (and every
// random DAG the fuzzer draws) must produce bit-identical vectors and
// struct-equal Stats across the three execution tiers — fused cluster
// kernels, node-at-a-time kernels (DisableFusion), and the
// command-accurate device model (DisableFastpath) — on every design,
// through the synchronous, sharded, and batch-submission entry points,
// all checked against the host parse-tree oracle.

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/expr"
)

// evalDiffExprs is the expression corpus: bare leaves, single gates, the
// docs' two-cluster example, shared subexpressions, deep XOR trees with
// eight variables (multi-cluster), and wide conjunctions whose clusters
// overlap in sources.
var evalDiffExprs = []string{
	"a",
	"~a",
	"a & b",
	"~(a ^ b)",
	"(dirty & ~referenced) | evicted",
	"((a | b) & (c | d) & (e | f)) ^ g",
	"(a & b) | ((a & b) & c)",
	"(a | b) & (b | c) & (c | a)",
	"((a ^ b) ^ (c ^ d)) ^ ((e ^ f) ^ (g ^ h))",
	"(a & b & c & d & e & f) | (c & d & e & f & g & h)",
	"~(a & (b | ~(c ^ (d & ~e))))",
}

// evalDiffModule is smallModule with enough rows for the deepest corpus
// expression's command-accurate fallback (vars + temps + staging row).
func evalDiffModule(c *Config) {
	smallModule(c)
	c.Module.RowsPerSubarray = 32
}

// evalOracleVars binds every variable of src to a fresh random vector of
// n bits and returns the bindings plus the oracle result computed
// bit-by-bit on the parse tree.
func evalOracleVars(t *testing.T, rng *rand.Rand, src string, n int) (map[string]*BitVector, *BitVector) {
	t.Helper()
	node, err := expr.Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	vars := map[string]*BitVector{}
	for _, name := range node.Vars() {
		vars[name] = RandomBitVector(rng, n)
	}
	want := NewBitVector(n)
	env := map[string]bool{}
	for i := 0; i < n; i++ {
		for name, v := range vars {
			env[name] = v.Bit(i)
		}
		want.SetBit(i, node.Eval(env))
	}
	return vars, want
}

// TestDifferentialEval pins the three-tier equivalence: for every design
// and every corpus expression over word-aligned and ragged lengths, the
// fused, node-kernel, and command-accurate tiers return bit-identical
// vectors and struct-equal Stats.
func TestDifferentialEval(t *testing.T) {
	designs := []Design{DesignELP2IM, DesignAmbit, DesignDrisaNOR}
	tiers := []struct {
		name   string
		mutate func(*Config)
	}{
		{"fused", func(*Config) {}},
		{"nodekernel", func(c *Config) { c.DisableFusion = true }},
		{"cmdaccurate", func(c *Config) { c.DisableFastpath = true }},
	}
	for _, d := range designs {
		d := d
		accs := make([]*Accelerator, len(tiers))
		for i, tier := range tiers {
			accs[i] = newAcc(t, evalDiffModule, tier.mutate, func(c *Config) { c.Design = d })
		}
		for ei, src := range evalDiffExprs {
			for _, n := range []int{50, 128, 3*128 + 17, 256} {
				rng := rand.New(rand.NewSource(int64(100*ei + n)))
				vars, want := evalOracleVars(t, rng, src, n)

				var refStats Stats
				for i, tier := range tiers {
					out, st, err := accs[i].Eval(src, vars)
					if err != nil {
						t.Fatalf("%v %s %q n=%d: %v", d, tier.name, src, n, err)
					}
					if !out.Equal(want) {
						t.Fatalf("%v %s %q n=%d: result diverges from oracle", d, tier.name, src, n)
					}
					if i == 0 {
						refStats = st
					} else if st != refStats {
						t.Fatalf("%v %s %q n=%d: stats %+v != fused tier %+v",
							d, tier.name, src, n, st, refStats)
					}
				}
			}
		}
	}
}

// TestDifferentialEvalSharded extends the eval differential across the
// Shard router and the batch submission paths: for shard counts 1 and 4,
// the scattered synchronous EvalExpr, Batch.SubmitEval, and
// ShardBatch.SubmitEval must all match the oracle bit for bit, with
// totals struct-equal to the single-module synchronous baseline.
func TestDifferentialEvalSharded(t *testing.T) {
	designs := []Design{DesignELP2IM, DesignAmbit, DesignDrisaNOR}
	exprs := []string{
		"(dirty & ~referenced) | evicted",
		"((a | b) & (c | d) & (e | f)) ^ g",
		"((a ^ b) ^ (c ^ d)) ^ ((e ^ f) ^ (g ^ h))",
	}
	for _, d := range designs {
		d := d
		base := newAcc(t, evalDiffModule, func(c *Config) { c.Design = d })
		for ei, src := range exprs {
			ce, err := CompileExpr(src)
			if err != nil {
				t.Fatalf("compile %q: %v", src, err)
			}
			for _, n := range []int{3*128 + 17, 512} {
				rng := rand.New(rand.NewSource(int64(9000*ei + n)))
				vars, want := evalOracleVars(t, rng, src, n)

				base.ResetTotals()
				out, wantStats, err := base.EvalExpr(ce, vars)
				if err != nil {
					t.Fatalf("%v EvalExpr %q: %v", d, src, err)
				}
				if !out.Equal(want) {
					t.Fatalf("%v EvalExpr %q n=%d diverges from oracle", d, src, n)
				}

				// Batch.SubmitEval folds the same aggregate cost on Wait.
				base.ResetTotals()
				b := base.Batch()
				bout, fut := b.SubmitEval(src, vars)
				bst, err := fut.Wait()
				if err != nil {
					t.Fatalf("%v SubmitEval %q: %v", d, src, err)
				}
				if _, err := b.Wait(); err != nil {
					t.Fatalf("%v batch wait: %v", d, err)
				}
				b.Close()
				if !bout.Equal(want) {
					t.Fatalf("%v SubmitEval %q n=%d diverges from oracle", d, src, n)
				}
				if bst != wantStats {
					t.Fatalf("%v SubmitEval %q: stats %+v != sync %+v", d, src, bst, wantStats)
				}
				if got := base.Totals(); got != wantStats {
					t.Fatalf("%v SubmitEval %q: totals %+v != sync %+v", d, src, got, wantStats)
				}

				for _, shards := range []int{1, 4} {
					sh, err := NewShard(shards, evalDiffModule, func(c *Config) { c.Design = d })
					if err != nil {
						t.Fatalf("NewShard(%d): %v", shards, err)
					}
					sout, sst, err := sh.EvalExpr(ce, vars)
					if err != nil {
						t.Fatalf("%v shards=%d EvalExpr %q: %v", d, shards, src, err)
					}
					if !sout.Equal(want) {
						t.Fatalf("%v shards=%d EvalExpr %q n=%d diverges", d, shards, src, n)
					}
					if sst != wantStats {
						t.Fatalf("%v shards=%d EvalExpr %q: stats %+v != single-module %+v",
							d, shards, src, sst, wantStats)
					}

					sb := sh.Batch()
					sbout, sfut := sb.SubmitEval(src, vars)
					sbst, err := sfut.Wait()
					if err != nil {
						t.Fatalf("%v shards=%d SubmitEval %q: %v", d, shards, src, err)
					}
					if _, err := sb.Wait(); err != nil {
						t.Fatalf("%v shards=%d shard batch wait: %v", d, shards, err)
					}
					sb.Close()
					if !sbout.Equal(want) {
						t.Fatalf("%v shards=%d SubmitEval %q n=%d diverges", d, shards, src, n)
					}
					if sbst != wantStats {
						t.Fatalf("%v shards=%d SubmitEval %q: stats %+v != single-module %+v",
							d, shards, src, sbst, wantStats)
					}
				}
			}
		}
	}
}

// randDAGExpr draws a random expression string of the given depth over
// variables a–h, fully parenthesized so operator precedence cannot
// reshape the intended DAG.
func randDAGExpr(rng *rand.Rand, depth int) string {
	if depth <= 0 || rng.Intn(5) == 0 {
		return string(rune('a' + rng.Intn(8)))
	}
	switch rng.Intn(5) {
	case 0:
		return "~" + randDAGExpr(rng, depth-1)
	case 1:
		return fmt.Sprintf("(%s & %s)", randDAGExpr(rng, depth-1), randDAGExpr(rng, depth-1))
	case 2:
		return fmt.Sprintf("(%s | %s)", randDAGExpr(rng, depth-1), randDAGExpr(rng, depth-1))
	default:
		return fmt.Sprintf("(%s ^ %s)", randDAGExpr(rng, depth-1), randDAGExpr(rng, depth-1))
	}
}

// fuzzAccs lazily builds the fuzzer's accelerator pair (fused and
// fusion-disabled) once per process.
var fuzzAccs struct {
	once     sync.Once
	fused    *Accelerator
	unfused  *Accelerator
	buildErr error
}

func fuzzAccPair() (*Accelerator, *Accelerator, error) {
	fuzzAccs.once.Do(func() {
		fuzzAccs.fused, fuzzAccs.buildErr = New(evalDiffModule)
		if fuzzAccs.buildErr != nil {
			return
		}
		fuzzAccs.unfused, fuzzAccs.buildErr = New(evalDiffModule,
			func(c *Config) { c.DisableFusion = true })
	})
	return fuzzAccs.fused, fuzzAccs.unfused, fuzzAccs.buildErr
}

// FuzzEvalDAG generates random expression DAGs (depth ≤ 6 over eight
// variables) and checks the fused tier bit-for-bit against both the
// node-kernel tier and the host parse-tree oracle, with struct-equal
// Stats.
func FuzzEvalDAG(f *testing.F) {
	f.Add(int64(1), byte(3), uint16(200))
	f.Add(int64(2), byte(6), uint16(401))
	f.Add(int64(7), byte(1), uint16(64))
	f.Add(int64(11), byte(5), uint16(300))
	f.Add(int64(23), byte(4), uint16(128))
	f.Fuzz(func(t *testing.T, seed int64, depth byte, bits uint16) {
		fused, unfused, err := fuzzAccPair()
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(seed))
		src := randDAGExpr(rng, int(depth%7))
		n := int(bits)%500 + 1

		node, err := expr.Parse(src)
		if err != nil {
			t.Fatalf("generated expression %q does not parse: %v", src, err)
		}
		vars := map[string]*BitVector{}
		for _, name := range node.Vars() {
			vars[name] = RandomBitVector(rng, n)
		}

		fout, fst, err := fused.Eval(src, vars)
		if err != nil {
			t.Fatalf("fused eval %q: %v", src, err)
		}
		uout, ust, err := unfused.Eval(src, vars)
		if err != nil {
			t.Fatalf("unfused eval %q: %v", src, err)
		}
		if !fout.Equal(uout) {
			t.Fatalf("fused and node-kernel tiers diverge on %q (n=%d)", src, n)
		}
		if fst != ust {
			t.Fatalf("%q: fused stats %+v != node-kernel stats %+v", src, fst, ust)
		}
		env := map[string]bool{}
		for i := 0; i < n; i++ {
			for name, v := range vars {
				env[name] = v.Bit(i)
			}
			if fout.Bit(i) != node.Eval(env) {
				t.Fatalf("%q bit %d diverges from oracle (n=%d)", src, i, n)
			}
		}
	})
}
