package elp2im

import (
	"math"
	"sync"

	"repro/internal/bitvec"
	"repro/internal/dram"
	"repro/internal/engine"
	"repro/internal/pipeline"
)

// costTerm is one accounting component of a submitted operation: the op
// kind it should be attributed to in the per-op metric series, and its
// modeled cost.
type costTerm struct {
	op engine.Op
	st Stats
}

// Future is the handle of one asynchronously submitted operation. A Batch
// submission has one underlying pipeline future; a ShardBatch submission
// has one per shard its stripes scattered to.
type Future struct {
	pfs []*pipeline.Future
	// components are the operation's cost terms in the order the
	// synchronous path would account them (one for an Op, copy + one per
	// fold for a Reduce); Batch.Wait folds them into the session totals in
	// this order so batched and per-call totals are bit-identical, and
	// attributes each term to its op kind in the metric series.
	components []costTerm
	stats      Stats
	err        error // submission-time validation error
	accounted  bool  // guarded by the owning batch's mutex
}

// runErr blocks until every underlying pipeline future settles and returns
// the first error in slice order — task order for a Batch, ascending shard
// order for a ShardBatch — so the reported error is deterministic.
func (f *Future) runErr() error {
	var first error
	for _, pf := range f.pfs {
		if err := pf.Err(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Wait blocks until the operation completes and returns its modeled cost.
// Session totals are folded in by Batch.Wait, not here.
func (f *Future) Wait() (Stats, error) {
	if f.err != nil {
		return Stats{}, f.err
	}
	if err := f.runErr(); err != nil {
		return Stats{}, err
	}
	return f.stats, nil
}

// Batch is an asynchronous submission context over an Accelerator: Submit
// and SubmitReduce enqueue operations and return immediately, a worker pool
// sized from the scheduler's effective-bank count executes them. Requests
// touching distinct subarrays run concurrently; requests landing on the
// same subarray are serialized in submission order, which is exactly the
// order data dependencies between submitted operations need (a vector's
// stripe always lives in the same subarray), so chains like
// Submit(And, t, a, b); Submit(Or, dst, t, c) are safe without explicit
// synchronization.
//
// A Batch may be used from multiple goroutines; operations submitted
// concurrently have no defined order relative to each other. Multiple
// Batches on one Accelerator — and Batches running alongside synchronous
// Op/Reduce/Eval calls — are safe as long as the concurrently executing
// operations' vectors do not overlap: the accelerator's per-subarray locks
// serialize shared row state across contexts, but ordering between
// contexts is undefined (submission order only holds within one Batch).
// Call Wait to drain outstanding work and fold the batch's statistics into
// the accelerator totals; call Close when done with the batch.
type Batch struct {
	acc  *Accelerator
	pool *pipeline.Pool

	mu     sync.Mutex
	closed bool
	leased []*Future // submission order
}

// poolFreeCap bounds how many drained worker pools an accelerator keeps
// warm for reuse across Batch lifecycles. Serving traffic runs one Batch
// per micro-batch flush; without reuse each flush would spawn (and then
// tear down) one goroutine and one channel per worker.
const poolFreeCap = 4

// getPool fetches a recycled worker pool or constructs a fresh one. Pool
// size is a pure function of the accelerator's config (batchWorkers), so
// every recycled pool is interchangeable with a fresh one.
func (a *Accelerator) getPool() *pipeline.Pool {
	select {
	case p := <-a.poolFree:
		return p
	default:
		return pipeline.NewPoolObs(a.batchWorkers(), a.obsc)
	}
}

// recyclePool drains p and parks it for reuse, or shuts it down when the
// freelist is full.
func (a *Accelerator) recyclePool(p *pipeline.Pool) {
	p.Drain()
	select {
	case a.poolFree <- p:
	default:
		p.Close()
	}
}

// batchWorkers sizes a batch worker pool from the scheduler's
// effective-bank count under the current power constraint — the modeled
// hardware's own concurrency budget.
func (a *Accelerator) batchWorkers() int {
	workers := a.module.Banks()
	if u, err := a.opUnit(engine.OpAND); err == nil {
		eff := int(math.Ceil(u.banks))
		if eff >= 1 && eff < workers {
			workers = eff
		}
	}
	return workers
}

// Batch returns a new asynchronous submission context. The worker pool is
// sized by batchWorkers and recycled across batches (see getPool).
func (a *Accelerator) Batch() *Batch {
	return &Batch{acc: a, pool: a.getPool()}
}

// Workers returns the batch's worker-pool size.
func (b *Batch) Workers() int { return b.pool.Workers() }

// failed records and returns an already-failed future.
func (b *Batch) failed(err error) *Future {
	f := &Future{err: err}
	b.mu.Lock()
	b.leased = append(b.leased, f)
	b.mu.Unlock()
	return f
}

// opTasks builds the per-serialization-group pipeline tasks executing
// dst = op(x, y) over the grouped stripes (y nil for unary ops). The
// executor — and with it fast-path eligibility — is resolved now, at
// submission time: SetExecutor takes effect for operations started after
// the call, and a Submit is the operation's start. The groups argument is
// ordered by first stripe (see groupStripes), so the task slice — and with
// it pipeline.Future's "first error in task order" — is deterministic.
// Shared by Batch.Submit and ShardBatch.Submit.
func (a *Accelerator) opTasks(iop engine.Op, dst, x, y *bitvec.Vector, groups []stripeRun) []pipeline.Task {
	cols := a.cfg.Module.Columns
	ex, wrapped := a.executor()
	k := a.fastKernel(iop, wrapped)
	if k != nil {
		a.fastHits.Inc()
	} else {
		a.fastFallbacks.Inc()
	}
	tasks := make([]pipeline.Task, 0, len(groups))
	for _, g := range groups {
		g := g
		tasks = append(tasks, pipeline.Task{Group: g.group, Run: func() error {
			if k != nil {
				// Pure word-level body: no device row state, so no
				// per-subarray lock — the pipeline's per-group FIFO already
				// orders dependent submissions.
				for _, s := range g.list {
					start := a.obsc.SpanStart()
					fastStripe(k, dst, x, y, s, cols)
					a.stripeSpan(start, s, nil)
				}
				return nil
			}
			buf := a.getBuf()
			defer a.putBuf(buf)
			for _, s := range g.list {
				if err := a.runStripe(g.group, s, buf, func(s int, sub *dram.Subarray, buf *bitvec.Vector) error {
					return a.opStripe(ex, iop, dst, x, y, s, sub, buf)
				}); err != nil {
					return err
				}
			}
			return nil
		}})
	}
	return tasks
}

// Submit enqueues dst = op(x, y) (y nil for unary ops) and returns its
// future. Validation errors surface on the returned future and on Wait.
func (b *Batch) Submit(op Op, dst, x, y *BitVector) *Future {
	a := b.acc
	a.batchSubmitted.Inc()
	iop := op.internal()
	if err := validateOp(op, dst, x, y); err != nil {
		return b.failed(err)
	}

	cols := a.cfg.Module.Columns
	stripes := (x.Len() + cols - 1) / cols
	st, err := a.opCost(iop, stripes)
	if err != nil {
		return b.failed(err)
	}

	var yv *bitvec.Vector
	if y != nil {
		yv = y.v
	}
	tasks := a.opTasks(iop, dst.v, x.v, yv, a.groupStripes(stripes))
	return b.enqueue(tasks, []costTerm{{op: iop, st: st}}, st)
}

// reduceComponents computes a reduction's cost terms in the synchronous
// Reduce's accounting order — the staging copy, then one term per fold —
// plus their sum (shared by Batch.SubmitReduce, ShardBatch.SubmitReduce).
func (a *Accelerator) reduceComponents(iop engine.Op, operands, stripes int) ([]costTerm, Stats, error) {
	components := make([]costTerm, 0, operands)
	copySt, err := a.opCost(engine.OpCOPY, stripes)
	if err != nil {
		return nil, Stats{}, err
	}
	components = append(components, costTerm{op: engine.OpCOPY, st: copySt})
	cp, chained := a.eng.(chainProvider)
	for i := 1; i < operands; i++ {
		var st Stats
		if chained {
			st, err = a.chainCost(cp, iop, stripes)
		} else {
			st, err = a.opCost(iop, stripes)
		}
		if err != nil {
			return nil, Stats{}, err
		}
		components = append(components, costTerm{op: iop, st: st})
	}
	var total Stats
	for _, c := range components {
		total.add(c.st)
	}
	return components, total, nil
}

// reduceTasks builds the per-serialization-group pipeline tasks executing
// the staged reduction dst = vs[0] op vs[1] op ... over the grouped
// stripes (see opTasks for the resolution and ordering contract).
func (a *Accelerator) reduceTasks(iop engine.Op, dst *bitvec.Vector, vs []*bitvec.Vector, groups []stripeRun) []pipeline.Task {
	cols := a.cfg.Module.Columns
	ipe, inPlace := a.eng.(inPlaceExecutor)
	ex, wrapped := a.executor()
	k := a.fastKernel(iop, wrapped)
	kcopy := a.fastKernel(engine.OpCOPY, wrapped)
	fast := k != nil && kcopy != nil
	if fast {
		a.fastHits.Inc()
	} else {
		a.fastFallbacks.Inc()
	}
	tasks := make([]pipeline.Task, 0, len(groups))
	for _, g := range groups {
		g := g
		tasks = append(tasks, pipeline.Task{Group: g.group, Run: func() error {
			if fast {
				for _, s := range g.list {
					start := a.obsc.SpanStart()
					fastStripe(kcopy, dst, vs[0], nil, s, cols)
					for _, v := range vs[1:] {
						fastFoldStripe(k, dst, v, s, cols)
					}
					a.stripeSpan(start, s, nil)
				}
				return nil
			}
			buf := a.getBuf()
			defer a.putBuf(buf)
			for _, s := range g.list {
				// One lock hold per stripe covers the staging copy and the
				// whole fold chain; each step reloads its rows, so stripe
				// granularity is the widest atomicity the chain needs.
				if err := a.runStripe(g.group, s, buf, func(s int, sub *dram.Subarray, buf *bitvec.Vector) error {
					if err := a.opStripe(ex, engine.OpCOPY, dst, vs[0], nil, s, sub, buf); err != nil {
						return err
					}
					for _, v := range vs[1:] {
						if err := a.foldStripe(ex, iop, ipe, inPlace, dst, v, s, sub, buf); err != nil {
							return err
						}
					}
					return nil
				}); err != nil {
					return err
				}
			}
			return nil
		}})
	}
	return tasks
}

// SubmitReduce enqueues the asynchronous variant of Reduce:
// dst = vs[0] op vs[1] op ... (OpAnd / OpOr only).
func (b *Batch) SubmitReduce(op Op, dst *BitVector, vs ...*BitVector) *Future {
	a := b.acc
	a.batchSubmitted.Inc()
	if err := validateReduce(op, dst, vs); err != nil {
		return b.failed(err)
	}
	iop := op.internal()
	cols := a.cfg.Module.Columns
	stripes := (dst.Len() + cols - 1) / cols

	components, total, err := a.reduceComponents(iop, len(vs), stripes)
	if err != nil {
		return b.failed(err)
	}
	tasks := a.reduceTasks(iop, dst.v, vecsOf(vs), a.groupStripes(stripes))
	return b.enqueue(tasks, components, total)
}

// SubmitEval enqueues the asynchronous variant of Eval: the expression is
// compiled and validated now (failures surface on the returned future),
// the result vector is allocated and returned immediately, and its
// contents are defined once the future completes. The evaluation's total
// cost folds into the session totals on Wait without per-op series
// records, exactly as the synchronous Eval accounts.
func (b *Batch) SubmitEval(src string, vars map[string]*BitVector) (*BitVector, *Future) {
	a := b.acc
	a.batchSubmitted.Inc()
	ce, err := CompileExpr(src)
	if err != nil {
		return nil, b.failed(err)
	}
	n, err := a.evalPrep(ce.plan, vars)
	if err != nil {
		return nil, b.failed(err)
	}
	cols := a.cfg.Module.Columns
	stripes := (n + cols - 1) / cols
	total, err := a.evalCost(ce.plan.Prog, stripes)
	if err != nil {
		return nil, b.failed(err)
	}
	out := NewBitVector(n)
	r := a.evalResolve(ce.plan, vars, out)
	tasks := a.evalTasks(r, a.groupStripes(stripes))
	return out, b.enqueue(tasks, nil, total)
}

// vecsOf unwraps a BitVector slice to the underlying storage vectors.
func vecsOf(vs []*BitVector) []*bitvec.Vector {
	out := make([]*bitvec.Vector, len(vs))
	for i, v := range vs {
		out[i] = v.v
	}
	return out
}

// enqueue hands tasks to the pool and registers the future. A closed
// batch fails the submission rather than touching its (possibly
// recycled) pool.
func (b *Batch) enqueue(tasks []pipeline.Task, components []costTerm, total Stats) *Future {
	b.mu.Lock()
	closed := b.closed
	b.mu.Unlock()
	if closed {
		return b.failed(pipeline.ErrClosed)
	}
	pf, err := b.pool.Submit(tasks)
	if err != nil {
		return b.failed(err)
	}
	f := &Future{pfs: []*pipeline.Future{pf}, components: components, stats: total}
	b.mu.Lock()
	b.leased = append(b.leased, f)
	b.mu.Unlock()
	return f
}

// Wait drains every submitted operation, folds the cost of each successful
// one into the accelerator's session totals (in submission order, exactly
// as the synchronous path would), and returns the batch's accumulated
// stats plus the first error in submission order. Wait may be called
// repeatedly; operations are accounted once. Submissions racing with Wait
// from other goroutines are not guaranteed to be included.
func (b *Batch) Wait() (Stats, error) {
	b.acc.batchWaits.Inc()
	b.pool.Drain()
	b.mu.Lock()
	defer b.mu.Unlock()
	var total Stats
	var firstErr error
	for _, f := range b.leased {
		err := f.err
		if err == nil {
			err = f.runErr()
		}
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if f.accounted {
			continue
		}
		f.accounted = true
		if len(f.components) == 0 {
			// Eval submissions carry one aggregate cost with no per-op
			// terms, matching the synchronous Eval (totals only, no
			// per-op series records).
			b.acc.addTotals(f.stats)
			total.add(f.stats)
			continue
		}
		for _, c := range f.components {
			b.acc.addTotals(c.st)
			total.add(c.st)
			b.acc.record(c.op, c.st)
		}
	}
	return total, firstErr
}

// Close drains the batch's worker pool and recycles it for the
// accelerator's next Batch. Further Submit calls return a failed future.
// Close does not fold unaccounted statistics into the totals — call Wait
// first. Close is idempotent.
func (b *Batch) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	b.mu.Unlock()
	b.acc.recyclePool(b.pool)
}
