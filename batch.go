package elp2im

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"repro/internal/bitvec"
	"repro/internal/dram"
	"repro/internal/engine"
	"repro/internal/pipeline"
)

// costTerm is one accounting component of a submitted operation: the op
// kind it should be attributed to in the per-op metric series, and its
// modeled cost.
type costTerm struct {
	op engine.Op
	st Stats
}

// Future is the handle of one asynchronously submitted operation.
type Future struct {
	pf *pipeline.Future
	// components are the operation's cost terms in the order the
	// synchronous path would account them (one for an Op, copy + one per
	// fold for a Reduce); Batch.Wait folds them into the session totals in
	// this order so batched and per-call totals are bit-identical, and
	// attributes each term to its op kind in the metric series.
	components []costTerm
	stats      Stats
	err        error // submission-time validation error
	accounted  bool  // guarded by the owning batch's mutex
}

// Wait blocks until the operation completes and returns its modeled cost.
// Session totals are folded in by Batch.Wait, not here.
func (f *Future) Wait() (Stats, error) {
	if f.err != nil {
		return Stats{}, f.err
	}
	if err := f.pf.Err(); err != nil {
		return Stats{}, err
	}
	return f.stats, nil
}

// Batch is an asynchronous submission context over an Accelerator: Submit
// and SubmitReduce enqueue operations and return immediately, a worker pool
// sized from the scheduler's effective-bank count executes them. Requests
// touching distinct subarrays run concurrently; requests landing on the
// same subarray are serialized in submission order, which is exactly the
// order data dependencies between submitted operations need (a vector's
// stripe always lives in the same subarray), so chains like
// Submit(And, t, a, b); Submit(Or, dst, t, c) are safe without explicit
// synchronization.
//
// A Batch may be used from multiple goroutines; operations submitted
// concurrently have no defined order relative to each other. Multiple
// Batches on one Accelerator — and Batches running alongside synchronous
// Op/Reduce/Eval calls — are safe as long as the concurrently executing
// operations' vectors do not overlap: the accelerator's per-subarray locks
// serialize shared row state across contexts, but ordering between
// contexts is undefined (submission order only holds within one Batch).
// Call Wait to drain outstanding work and fold the batch's statistics into
// the accelerator totals; call Close when done with the batch.
type Batch struct {
	acc  *Accelerator
	pool *pipeline.Pool

	mu     sync.Mutex
	leased []*Future // submission order
}

// Batch returns a new asynchronous submission context. The worker pool is
// sized from the scheduler's effective-bank count under the current power
// constraint — the modeled hardware's own concurrency budget.
func (a *Accelerator) Batch() *Batch {
	workers := a.module.Banks()
	if u, err := a.opUnit(engine.OpAND); err == nil {
		eff := int(math.Ceil(u.banks))
		if eff >= 1 && eff < workers {
			workers = eff
		}
	}
	return &Batch{
		acc:  a,
		pool: pipeline.NewPoolObs(workers, a.obsc),
	}
}

// Workers returns the batch's worker-pool size.
func (b *Batch) Workers() int { return b.pool.Workers() }

// failed records and returns an already-failed future.
func (b *Batch) failed(err error) *Future {
	f := &Future{err: err}
	b.mu.Lock()
	b.leased = append(b.leased, f)
	b.mu.Unlock()
	return f
}

// Submit enqueues dst = op(x, y) (y nil for unary ops) and returns its
// future. Validation errors surface on the returned future and on Wait.
func (b *Batch) Submit(op Op, dst, x, y *BitVector) *Future {
	a := b.acc
	a.batchSubmitted.Inc()
	iop := op.internal()
	if x == nil || dst == nil {
		return b.failed(errors.New("elp2im: nil vector"))
	}
	if !op.Unary() {
		if y == nil {
			return b.failed(fmt.Errorf("elp2im: %v needs two operands", op))
		}
		if y.Len() != x.Len() {
			return b.failed(errors.New("elp2im: operand length mismatch"))
		}
	}
	if dst.Len() != x.Len() {
		return b.failed(errors.New("elp2im: destination length mismatch"))
	}

	cols := a.cfg.Module.Columns
	stripes := (x.Len() + cols - 1) / cols
	st, err := a.opCost(iop, stripes)
	if err != nil {
		return b.failed(err)
	}

	var yv *bitvec.Vector
	if y != nil {
		yv = y.v
	}
	// The executor (and with it fast-path eligibility) is resolved at
	// submission time: SetExecutor takes effect for operations started
	// after the call, and a Submit is the operation's start.
	ex, wrapped := a.executor()
	k := a.fastKernel(iop, wrapped)
	if k != nil {
		a.fastHits.Inc()
	} else {
		a.fastFallbacks.Inc()
	}
	// groupStripes is ordered by first stripe, so the task slice — and with
	// it pipeline.Future's "first error in task order" — is deterministic.
	groups := a.groupStripes(stripes)
	tasks := make([]pipeline.Task, 0, len(groups))
	for _, g := range groups {
		g := g
		tasks = append(tasks, pipeline.Task{Group: g.group, Run: func() error {
			if k != nil {
				// Pure word-level body: no device row state, so no
				// per-subarray lock — the pipeline's per-group FIFO already
				// orders dependent submissions.
				for _, s := range g.list {
					start := a.obsc.SpanStart()
					fastStripe(k, dst.v, x.v, yv, s, cols)
					a.stripeSpan(start, s, nil)
				}
				return nil
			}
			buf := a.getBuf()
			defer a.putBuf(buf)
			for _, s := range g.list {
				if err := a.runStripe(g.group, s, buf, func(s int, sub *dram.Subarray, buf *bitvec.Vector) error {
					return a.opStripe(ex, iop, dst.v, x.v, yv, s, sub, buf)
				}); err != nil {
					return err
				}
			}
			return nil
		}})
	}
	return b.enqueue(tasks, []costTerm{{op: iop, st: st}}, st)
}

// SubmitReduce enqueues the asynchronous variant of Reduce:
// dst = vs[0] op vs[1] op ... (OpAnd / OpOr only).
func (b *Batch) SubmitReduce(op Op, dst *BitVector, vs ...*BitVector) *Future {
	a := b.acc
	a.batchSubmitted.Inc()
	if op != OpAnd && op != OpOr {
		return b.failed(fmt.Errorf("elp2im: no reduction for %v", op))
	}
	if len(vs) < 2 {
		return b.failed(errors.New("elp2im: reduction needs at least two vectors"))
	}
	for _, v := range vs {
		if v == nil || v.Len() != dst.Len() {
			return b.failed(errors.New("elp2im: reduction operand nil or length mismatch"))
		}
	}
	iop := op.internal()
	cols := a.cfg.Module.Columns
	stripes := (dst.Len() + cols - 1) / cols

	// Cost components in the synchronous Reduce's accounting order: the
	// staging copy, then one term per fold.
	components := make([]costTerm, 0, len(vs))
	copySt, err := a.opCost(engine.OpCOPY, stripes)
	if err != nil {
		return b.failed(err)
	}
	components = append(components, costTerm{op: engine.OpCOPY, st: copySt})
	cp, chained := a.eng.(chainProvider)
	for range vs[1:] {
		var st Stats
		if chained {
			st, err = a.chainCost(cp, iop, stripes)
		} else {
			st, err = a.opCost(iop, stripes)
		}
		if err != nil {
			return b.failed(err)
		}
		components = append(components, costTerm{op: iop, st: st})
	}
	var total Stats
	for _, c := range components {
		total.add(c.st)
	}

	ipe, inPlace := a.eng.(inPlaceExecutor)
	ex, wrapped := a.executor()
	k := a.fastKernel(iop, wrapped)
	kcopy := a.fastKernel(engine.OpCOPY, wrapped)
	fast := k != nil && kcopy != nil
	if fast {
		a.fastHits.Inc()
	} else {
		a.fastFallbacks.Inc()
	}
	groups := a.groupStripes(stripes)
	tasks := make([]pipeline.Task, 0, len(groups))
	for _, g := range groups {
		g := g
		tasks = append(tasks, pipeline.Task{Group: g.group, Run: func() error {
			if fast {
				for _, s := range g.list {
					start := a.obsc.SpanStart()
					fastStripe(kcopy, dst.v, vs[0].v, nil, s, cols)
					for _, v := range vs[1:] {
						fastFoldStripe(k, dst.v, v.v, s, cols)
					}
					a.stripeSpan(start, s, nil)
				}
				return nil
			}
			buf := a.getBuf()
			defer a.putBuf(buf)
			for _, s := range g.list {
				// One lock hold per stripe covers the staging copy and the
				// whole fold chain; each step reloads its rows, so stripe
				// granularity is the widest atomicity the chain needs.
				if err := a.runStripe(g.group, s, buf, func(s int, sub *dram.Subarray, buf *bitvec.Vector) error {
					if err := a.opStripe(ex, engine.OpCOPY, dst.v, vs[0].v, nil, s, sub, buf); err != nil {
						return err
					}
					for _, v := range vs[1:] {
						if err := a.foldStripe(ex, iop, ipe, inPlace, dst.v, v.v, s, sub, buf); err != nil {
							return err
						}
					}
					return nil
				}); err != nil {
					return err
				}
			}
			return nil
		}})
	}
	return b.enqueue(tasks, components, total)
}

// enqueue hands tasks to the pool and registers the future.
func (b *Batch) enqueue(tasks []pipeline.Task, components []costTerm, total Stats) *Future {
	pf, err := b.pool.Submit(tasks)
	if err != nil {
		return b.failed(err)
	}
	f := &Future{pf: pf, components: components, stats: total}
	b.mu.Lock()
	b.leased = append(b.leased, f)
	b.mu.Unlock()
	return f
}

// Wait drains every submitted operation, folds the cost of each successful
// one into the accelerator's session totals (in submission order, exactly
// as the synchronous path would), and returns the batch's accumulated
// stats plus the first error in submission order. Wait may be called
// repeatedly; operations are accounted once. Submissions racing with Wait
// from other goroutines are not guaranteed to be included.
func (b *Batch) Wait() (Stats, error) {
	b.acc.batchWaits.Inc()
	b.pool.Drain()
	b.mu.Lock()
	defer b.mu.Unlock()
	var total Stats
	var firstErr error
	for _, f := range b.leased {
		err := f.err
		if err == nil {
			err = f.pf.Err()
		}
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if f.accounted {
			continue
		}
		f.accounted = true
		for _, c := range f.components {
			b.acc.addTotals(c.st)
			total.add(c.st)
			b.acc.record(c.op, c.st)
		}
	}
	return total, firstErr
}

// Close drains and shuts down the batch's worker pool. Further Submit
// calls return a failed future. Close does not fold unaccounted statistics
// into the totals — call Wait first.
func (b *Batch) Close() { b.pool.Close() }
